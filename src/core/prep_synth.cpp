#include "core/prep_synth.hpp"

#include <algorithm>
#include <numeric>
#include <cmath>
#include <random>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/synth_cache.hpp"
#include "f2/gauss.hpp"
#include "sat/cnf_builder.hpp"
#include "sat/parallel_solver.hpp"

namespace ftsp::core {

using f2::BitMatrix;
using f2::BitVec;

namespace {

/// True iff every CNOT of a (data-only) preparation circuit lies on a
/// coupled pair. Null/all-to-all maps allow everything.
bool circuit_respects_coupling(const circuit::Circuit& circ,
                               const qec::CouplingMap* map) {
  if (!qec::coupling_constrained(map)) {
    return true;
  }
  for (const auto& gate : circ.gates()) {
    if (gate.kind == circuit::GateKind::Cnot &&
        !map->allows(gate.q0, gate.q1)) {
      return false;
    }
  }
  return true;
}

void check_coupling_sites(const qec::CouplingMap* map, std::size_t n) {
  if (map != nullptr && map->num_sites() != n) {
    throw std::invalid_argument(
        "synthesize_prep: coupling map '" + map->name() + "' has " +
        std::to_string(map->num_sites()) + " sites but the state has " +
        std::to_string(n) + " qubits");
  }
}

}  // namespace

namespace {

struct OrderedRref {
  BitMatrix reduced;
  std::vector<std::size_t> pivots;  // Original column index, one per row.
};

/// RREF scanning columns in the order given by `col_order`.
OrderedRref rref_with_order(const BitMatrix& m,
                            const std::vector<std::size_t>& col_order) {
  OrderedRref result;
  result.reduced = m;
  BitMatrix& a = result.reduced;
  std::size_t pivot_row = 0;
  for (std::size_t col : col_order) {
    if (pivot_row >= a.rows()) {
      break;
    }
    std::size_t sel = a.rows();
    for (std::size_t r = pivot_row; r < a.rows(); ++r) {
      if (a.get(r, col)) {
        sel = r;
        break;
      }
    }
    if (sel == a.rows()) {
      continue;
    }
    a.swap_rows(pivot_row, sel);
    for (std::size_t r = 0; r < a.rows(); ++r) {
      if (r != pivot_row && a.get(r, col)) {
        a.add_row_to(pivot_row, r);
      }
    }
    result.pivots.push_back(col);
    ++pivot_row;
  }
  return result;
}

std::size_t reduced_cost(const OrderedRref& r) {
  std::size_t weight = 0;
  for (std::size_t i = 0; i < r.reduced.rows(); ++i) {
    weight += r.reduced.row(i).popcount();
  }
  return weight - r.pivots.size();
}

/// Builds the preparation circuit from a reduced generator matrix: pivot
/// qubits start in |+>, the rest in |0|>; every non-pivot support entry of
/// row i becomes a CNOT from the row's pivot.
circuit::Circuit circuit_from_reduced(const qec::StateContext& state,
                                      const OrderedRref& r) {
  const std::size_t n = state.num_qubits();
  circuit::Circuit prep(n);
  BitVec pivot_set(n);
  for (std::size_t p : r.pivots) {
    pivot_set.set(p);
  }
  for (std::size_t q = 0; q < n; ++q) {
    if (pivot_set.get(q)) {
      prep.prep_x(q);
    } else {
      prep.prep_z(q);
    }
  }
  for (std::size_t i = 0; i < r.reduced.rows(); ++i) {
    for (std::size_t q : r.reduced.row(i).ones()) {
      if (q != r.pivots[i]) {
        prep.cnot(r.pivots[i], q);
      }
    }
  }
  return prep;
}

}  // namespace

namespace {

std::size_t nonzero_columns(const BitMatrix& m) {
  std::size_t count = 0;
  for (std::size_t q = 0; q < m.cols(); ++q) {
    if (m.column(q).any()) {
      ++count;
    }
  }
  return count;
}

/// One greedy reverse-synthesis run: apply weight-reducing column
/// additions (col t += col c, the inverse action of CNOT(c,t)) to the
/// generator matrix until its support is confined to r columns — i.e.
/// until the state has been disentangled into a product state. Row
/// operations are free (the state only depends on the row space), which
/// guarantees a strictly weight-reducing move always exists. The reversed
/// op sequence is the preparation circuit; unlike plain RREF fan-out this
/// yields chain/tree CNOT structures whose spread errors are largely
/// stabilizer-equivalent to low-weight errors.
std::optional<circuit::Circuit> greedy_reverse_prep(
    const qec::StateContext& state, std::mt19937_64& rng,
    const qec::CouplingMap* map) {
  const bool constrained = qec::coupling_constrained(map);
  const BitMatrix& gens = state.stabilizer_generators(qec::PauliType::X);
  const std::size_t n = state.num_qubits();
  auto reduced = f2::rref(gens);
  reduced.reduced.remove_zero_rows();
  BitMatrix m = reduced.reduced;
  const std::size_t r = m.rows();

  std::vector<std::pair<std::size_t, std::size_t>> ops;
  const std::size_t max_ops = 4 * n * n;
  while (nonzero_columns(m) > r && ops.size() < max_ops) {
    // Free row reduction keeps the greedy landscape canonical.
    auto rr = f2::rref(m);
    rr.reduced.remove_zero_rows();
    m = rr.reduced;
    if (nonzero_columns(m) <= r) {
      break;
    }
    std::ptrdiff_t best_gain = -1;
    bool best_zeroes = false;
    std::vector<std::pair<std::size_t, std::size_t>> best_ops;
    for (std::size_t c = 0; c < n; ++c) {
      const BitVec col_c = m.column(c);
      if (col_c.none()) {
        continue;
      }
      for (std::size_t t = 0; t < n; ++t) {
        if (t == c || (constrained && !map->allows(c, t))) {
          continue;
        }
        const BitVec col_t = m.column(t);
        if (col_t.none()) {
          continue;
        }
        const BitVec merged = col_t ^ col_c;
        const auto gain = static_cast<std::ptrdiff_t>(col_t.popcount()) -
                          static_cast<std::ptrdiff_t>(merged.popcount());
        const bool zeroes = merged.none();
        if (gain < best_gain || (gain == best_gain && best_zeroes && !zeroes)) {
          continue;
        }
        if (gain > best_gain || (zeroes && !best_zeroes)) {
          best_gain = gain;
          best_zeroes = zeroes;
          best_ops.clear();
        }
        best_ops.emplace_back(c, t);
      }
    }
    if (best_ops.empty() || best_gain < 0) {
      return std::nullopt;  // Should not happen; caller falls back.
    }
    const auto [c, t] = best_ops[rng() % best_ops.size()];
    for (std::size_t i = 0; i < m.rows(); ++i) {
      if (m.get(i, c)) {
        m.row(i).flip(t);
      }
    }
    ops.emplace_back(c, t);
  }
  if (nonzero_columns(m) > r) {
    return std::nullopt;
  }

  circuit::Circuit prep(n);
  for (std::size_t q = 0; q < n; ++q) {
    if (m.column(q).any()) {
      prep.prep_x(q);
    } else {
      prep.prep_z(q);
    }
  }
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    prep.cnot(it->first, it->second);
  }
  return prep;
}

}  // namespace

circuit::Circuit synthesize_prep(const qec::StateContext& state,
                                 const PrepSynthOptions& options) {
  const qec::CouplingMap* map = options.coupling.get();
  const bool constrained = qec::coupling_constrained(map);
  check_coupling_sites(map, state.num_qubits());

  if (options.method == PrepSynthOptions::Method::Optimal) {
    if (auto optimal = synthesize_prep_optimal(state, options)) {
      return *std::move(optimal);
    }
    if (constrained) {
      // The heuristic cannot be trusted to respect the map (and usually
      // cannot satisfy it at all), so an exhausted search is an error,
      // never a silent downgrade to an all-to-all-shaped circuit.
      throw std::runtime_error(
          "synthesize_prep: SAT-optimal search exhausted (max_cnots=" +
          std::to_string(options.max_cnots) + ", conflict budget " +
          std::to_string(options.sat_conflict_budget) +
          ") under coupling map '" + map->name() +
          "'; refusing the heuristic fallback — raise max_cnots or the "
          "budget");
    }
    // Fall through to the heuristic if the SAT search gave up.
    if (options.report != nullptr) {
      options.report->sat_search_exhausted = true;
      options.report->heuristic_fallback = true;
    }
    if (options.proof_sink != nullptr) {
      options.proof_sink->record_absent(
          options.proof_label, "CNOT-minimal preparation circuit",
          "SAT-optimal search exhausted; the returned circuit is heuristic "
          "and its optimality is unproven");
    }
  } else if (options.proof_sink != nullptr) {
    options.proof_sink->record_absent(
        options.proof_label, "heuristic preparation circuit",
        "heuristic synthesis proves no optimality; request Method::Optimal "
        "for a checked refutation");
  }

  const BitMatrix& gens = state.stabilizer_generators(qec::PauliType::X);
  const std::size_t n = state.num_qubits();

  // Baseline: RREF fan-out over several column orders (always succeeds
  // unconstrained; under a coupling map, orders whose fan-out would emit
  // an uncoupled CNOT are filtered out).
  std::vector<std::vector<std::size_t>> orders;
  std::vector<std::size_t> natural(n);
  std::iota(natural.begin(), natural.end(), 0);
  orders.push_back(natural);
  orders.emplace_back(natural.rbegin(), natural.rend());
  auto by_weight = natural;
  std::stable_sort(by_weight.begin(), by_weight.end(),
                   [&](std::size_t a, std::size_t b) {
                     return gens.column(a).popcount() <
                            gens.column(b).popcount();
                   });
  orders.push_back(by_weight);
  orders.emplace_back(by_weight.rbegin(), by_weight.rend());

  std::optional<circuit::Circuit> best;
  std::size_t best_cost = SIZE_MAX;
  for (const auto& order : orders) {
    const auto reduced = rref_with_order(gens, order);
    const std::size_t cost = reduced_cost(reduced);
    if (cost >= best_cost) {
      continue;
    }
    circuit::Circuit candidate = circuit_from_reduced(state, reduced);
    if (constrained && !circuit_respects_coupling(candidate, map)) {
      continue;
    }
    best_cost = cost;
    best = std::move(candidate);
  }

  // Greedy reverse synthesis with randomized tie-breaking usually beats
  // the fan-out; keep the best CNOT count over the configured tries.
  std::mt19937_64 rng(options.seed);
  const std::size_t tries = std::max<std::size_t>(options.shuffle_tries, 1);
  for (std::size_t t = 0; t < tries; ++t) {
    if (auto candidate = greedy_reverse_prep(state, rng, map)) {
      if (!best.has_value() ||
          candidate->cnot_count() < best->cnot_count()) {
        best = std::move(candidate);
      }
    }
  }
  if (!best.has_value()) {
    // Only reachable under a constrained map: unconstrained, the RREF
    // fan-out always yields a circuit.
    throw std::runtime_error(
        "synthesize_prep: heuristic preparation infeasible under coupling "
        "map '" +
        map->name() +
        "' — no candidate avoided uncoupled CNOTs; use "
        "PrepSynthOptions::Method::Optimal");
  }
  return *std::move(best);
}

namespace {

/// Number of r-dimensional subspaces of F2^n (Gaussian binomial), clamped
/// to `limit` to avoid overflow.
std::size_t count_subspaces(std::size_t n, std::size_t r,
                            std::size_t limit) {
  long double count = 1.0L;
  for (std::size_t i = 0; i < r; ++i) {
    count *= (std::pow(2.0L, static_cast<long double>(n - i)) - 1.0L) /
             (std::pow(2.0L, static_cast<long double>(r - i)) - 1.0L);
    if (count > static_cast<long double>(limit)) {
      return limit + 1;
    }
  }
  return static_cast<std::size_t>(count);
}

std::string rowspace_key(const BitMatrix& m) {
  auto rr = f2::rref(m);
  rr.reduced.remove_zero_rows();
  std::string key;
  for (std::size_t i = 0; i < rr.reduced.rows(); ++i) {
    key += rr.reduced.row(i).to_string();
  }
  return key;
}

/// Exact CNOT-minimal preparation via breadth-first search over row
/// spaces: states are canonical RREFs of the generator matrix, edges are
/// column additions (reverse CNOTs). The subspace count [n choose r]_2 is
/// small for the low-rank codes (e.g. ~12k for the Steane X side), making
/// this both exact and instantaneous where it applies.
std::optional<circuit::Circuit> optimal_prep_bfs(
    const qec::StateContext& state, const qec::CouplingMap* map) {
  const bool constrained = qec::coupling_constrained(map);
  const BitMatrix& gens = state.stabilizer_generators(qec::PauliType::X);
  const std::size_t n = state.num_qubits();
  auto start_rref = f2::rref(gens);
  start_rref.reduced.remove_zero_rows();
  const BitMatrix start = start_rref.reduced;
  const std::size_t r = start.rows();

  struct Node {
    BitMatrix m;
    std::size_t parent;
    std::pair<std::size_t, std::size_t> op;
  };
  std::vector<Node> nodes;
  std::unordered_map<std::string, std::size_t> seen;
  nodes.push_back({start, SIZE_MAX, {0, 0}});
  seen.emplace(rowspace_key(start), 0);

  const auto is_product = [&](const BitMatrix& m) {
    return nonzero_columns(m) <= r;
  };

  std::size_t found = SIZE_MAX;
  if (is_product(start)) {
    found = 0;
  }
  for (std::size_t head = 0; head < nodes.size() && found == SIZE_MAX;
       ++head) {
    // Copy: nodes may reallocate while expanding.
    const BitMatrix m = nodes[head].m;
    for (std::size_t c = 0; c < n && found == SIZE_MAX; ++c) {
      const f2::BitVec col_c = m.column(c);
      if (col_c.none()) {
        continue;
      }
      for (std::size_t t = 0; t < n; ++t) {
        if (t == c || (constrained && !map->allows(c, t))) {
          continue;
        }
        BitMatrix next = m;
        for (std::size_t i = 0; i < r; ++i) {
          if (next.get(i, c)) {
            next.row(i).flip(t);
          }
        }
        const std::string key = rowspace_key(next);
        if (seen.contains(key)) {
          continue;
        }
        seen.emplace(key, nodes.size());
        nodes.push_back({std::move(next), head, {c, t}});
        if (is_product(nodes.back().m)) {
          found = nodes.size() - 1;
          break;
        }
      }
    }
  }
  if (found == SIZE_MAX) {
    return std::nullopt;
  }

  // Reconstruct the reverse-op path, then emit the forward circuit.
  std::vector<std::pair<std::size_t, std::size_t>> ops;
  const BitMatrix product = nodes[found].m;
  for (std::size_t at = found; nodes[at].parent != SIZE_MAX;
       at = nodes[at].parent) {
    ops.push_back(nodes[at].op);
  }
  // `ops` is now last-op-first, which is exactly forward-circuit order.
  circuit::Circuit prep(n);
  for (std::size_t q = 0; q < n; ++q) {
    if (product.column(q).any()) {
      prep.prep_x(q);
    } else {
      prep.prep_z(q);
    }
  }
  for (const auto& [c, t] : ops) {
    prep.cnot(c, t);
  }
  return prep;
}

}  // namespace

namespace {

using sat::CnfBuilder;
using sat::Lit;

/// Records the proof outcome of a gate-count sweep that found a circuit
/// with `found_gates` CNOTs. The sweep visits every count from the
/// structural lower bound upward, so the chronologically last UNSAT leg
/// sits at `found_gates - 1` — the refutation anchoring minimality.
void record_prep_outcome(ProofSink& sink, const std::string& stage,
                         std::size_t found_gates, bool saw_unsat,
                         const std::optional<sat::UnsatProof>& last_unsat,
                         std::size_t last_unsat_gates) {
  if (!saw_unsat) {
    sink.record_absent(
        stage,
        std::to_string(found_gates) +
            " CNOTs is the minimal preparation gate count",
        "optimal gate count equals the structural lower bound; the sweep "
        "had no UNSAT leg");
    return;
  }
  const std::string claim = "no preparation circuit with exactly " +
                            std::to_string(last_unsat_gates) +
                            " CNOTs exists";
  if (last_unsat.has_value()) {
    sink.record(
        make_checked_proof(stage, claim, last_unsat_gates, *last_unsat));
  } else {
    sink.record_absent(stage, claim,
                       "cube-split portfolio solving keeps no "
                       "single-solver proof log");
  }
}

/// Incremental reverse-synthesis search: one solver holds up to
/// `max_cnots` optional op slots, grown lazily as the gate-count sweep
/// advances. Slot k is governed by an activation literal act[k]
/// (monotone: act[k] -> act[k-1]); an inactive slot selects no op and
/// leaves the matrix unchanged, so "exactly G gates" is just an
/// assumption set — the CNF skeleton is shared and learned clauses carry
/// across the whole sweep.
class IncrementalPrepSearch {
 public:
  IncrementalPrepSearch(const BitMatrix& start, std::size_t n,
                        const PrepSynthOptions& options)
      : n_(n),
        r_(start.rows()),
        map_(options.coupling.get()),
        constrained_(qec::coupling_constrained(map_)) {
    solver_ = sat::make_engine_solver(options.engine,
                                      options.sat_conflict_budget);
    if (options.proof_sink != nullptr) {
      // On before any clause lands, so the logged premise is verbatim.
      solver_->set_proof_logging(true);
    }
    cnf_ = std::make_unique<CnfBuilder>(*solver_);
    m_.emplace_back(r_, std::vector<Lit>(n_));
    for (std::size_t i = 0; i < r_; ++i) {
      for (std::size_t q = 0; q < n_; ++q) {
        m_[0][i][q] = cnf_->constant(start.get(i, q));
      }
    }
  }

  sat::SolverBase& solver() { return *solver_; }

  /// The assumption set defining the "exactly `gates` CNOTs" query: the
  /// active-slot prefix, the product-state condition, and the
  /// progress-pruning ladder bounds. Requires `grow(gates)` to have run.
  std::vector<Lit> assumptions_for(std::size_t gates) const {
    std::vector<Lit> assumptions;
    for (std::size_t k = 0; k < gates; ++k) {
      assumptions.push_back(act_[k]);
    }
    if (gates < act_.size()) {
      assumptions.push_back(~act_[gates]);
    }
    if (gates > 0 && r_ < ladders_[gates - 1].max_bound()) {
      assumptions.push_back(ladders_[gates - 1].at_most(r_));
    }
    // Progress ladder: each op can zero at most one column, so after
    // slot j (j < gates-1) at most r + (gates-1-j) columns may remain
    // nonzero.
    for (std::size_t j = 0; j + 1 < gates; ++j) {
      const std::size_t bound = r_ + (gates - 1 - j);
      if (bound < n_ && bound < ladders_[j].max_bound()) {
        assumptions.push_back(ladders_[j].at_most(bound));
      }
    }
    return assumptions;
  }

  /// Solves for a circuit of exactly `gates` CNOTs.
  bool solve_for(std::size_t gates) {
    grow(gates);
    return solver_->solve(assumptions_for(gates));
  }

  circuit::Circuit decode(std::size_t gates) const {
    circuit::Circuit prep(n_);
    BitVec plus(n_);
    const auto& final_m = m_[gates];
    for (std::size_t q = 0; q < n_; ++q) {
      for (std::size_t i = 0; i < r_; ++i) {
        if (solver_->model_value(final_m[i][q])) {
          plus.set(q);
          break;
        }
      }
    }
    for (std::size_t q = 0; q < n_; ++q) {
      if (plus.get(q)) {
        prep.prep_x(q);
      } else {
        prep.prep_z(q);
      }
    }
    for (std::size_t k = gates; k-- > 0;) {
      for (std::size_t c = 0; c < n_; ++c) {
        for (std::size_t t = 0; t < n_; ++t) {
          if (sel_[k][c][t] != Lit::undef &&
              solver_->model_value(sel_[k][c][t])) {
            prep.cnot(c, t);
          }
        }
      }
    }
    return prep;
  }

 private:
  void grow(std::size_t slots) {
    while (act_.size() < slots) {
      const std::size_t k = act_.size();
      const Lit act = cnf_->fresh();
      if (k > 0) {
        solver_->add_binary(~act, act_[k - 1]);  // Active prefix.
      }
      act_.push_back(act);

      std::vector<std::vector<Lit>> sel(n_, std::vector<Lit>(n_));
      std::vector<Lit> all;
      for (std::size_t c = 0; c < n_; ++c) {
        for (std::size_t t = 0; t < n_; ++t) {
          // Coupling-constrained slots never even encode the illegal
          // pairs — the allowed-pair mask shrinks the CNF instead of
          // adding clauses.
          if (c == t || (constrained_ && !map_->allows(c, t))) {
            continue;
          }
          sel[c][t] = cnf_->fresh();
          all.push_back(sel[c][t]);
          solver_->add_binary(~sel[c][t], act);  // Op implies active.
          // Pruning: adding a zero column is a no-op, and a minimal
          // circuit has none.
          std::vector<Lit> source_nonzero;
          source_nonzero.reserve(r_ + 1);
          source_nonzero.push_back(~sel[c][t]);
          for (std::size_t i = 0; i < r_; ++i) {
            source_nonzero.push_back(m_[k][i][c]);
          }
          solver_->add_clause(source_nonzero);
          // Pruning: two identical adjacent ops cancel; a minimal
          // circuit has none.
          if (k > 0) {
            solver_->add_binary(~sel_[k - 1][c][t], ~sel[c][t]);
          }
        }
      }
      // An active slot selects exactly one op; an inactive one selects
      // none (each op already implies act).
      std::vector<Lit> one_if_active;
      one_if_active.reserve(all.size() + 1);
      one_if_active.push_back(~act);
      one_if_active.insert(one_if_active.end(), all.begin(), all.end());
      solver_->add_clause(one_if_active);
      for (std::size_t a = 0; a < all.size(); ++a) {
        for (std::size_t b = a + 1; b < all.size(); ++b) {
          solver_->add_binary(~all[a], ~all[b]);
        }
      }

      // Symmetry breaking: adjacent ops (c,t), (c',t') commute iff
      // t != c' and t' != c; force commuting adjacent pairs into
      // lexicographically non-decreasing order.
      if (k > 0) {
        for (std::size_t c = 0; c < n_; ++c) {
          for (std::size_t t = 0; t < n_; ++t) {
            if (sel_[k - 1][c][t] == Lit::undef) {
              continue;
            }
            for (std::size_t c2 = 0; c2 < n_; ++c2) {
              for (std::size_t t2 = 0; t2 < n_; ++t2) {
                if (sel[c2][t2] == Lit::undef) {
                  continue;
                }
                const bool commute = (t != c2) && (t2 != c);
                const bool decreasing =
                    std::make_pair(c2, t2) < std::make_pair(c, t);
                if (commute && decreasing) {
                  solver_->add_binary(~sel_[k - 1][c][t], ~sel[c2][t2]);
                }
              }
            }
          }
        }
      }

      // State after this slot: col t += col c when (c,t) is selected.
      std::vector<std::vector<Lit>> next(r_, std::vector<Lit>(n_));
      for (std::size_t q = 0; q < n_; ++q) {
        for (std::size_t i = 0; i < r_; ++i) {
          std::vector<Lit> adds;
          adds.reserve(n_ - 1);
          for (std::size_t c = 0; c < n_; ++c) {
            if (c != q && sel[c][q] != Lit::undef) {
              adds.push_back(cnf_->and_of({sel[c][q], m_[k][i][c]}));
            }
          }
          next[i][q] = cnf_->xor_of({m_[k][i][q], cnf_->or_of(adds)});
        }
      }
      sel_.push_back(std::move(sel));
      m_.push_back(std::move(next));

      // Column-count ladder over the post-slot state, swept via
      // assumptions (product condition and progress pruning).
      std::vector<Lit> nonzero;
      nonzero.reserve(n_);
      for (std::size_t q = 0; q < n_; ++q) {
        std::vector<Lit> column(r_);
        for (std::size_t i = 0; i < r_; ++i) {
          column[i] = m_[k + 1][i][q];
        }
        nonzero.push_back(cnf_->or_of(column));
      }
      ladders_.push_back(cnf_->make_cardinality_ladder(nonzero, n_));
    }
  }

  std::size_t n_;
  std::size_t r_;
  const qec::CouplingMap* map_;
  bool constrained_;
  std::unique_ptr<sat::SolverBase> solver_;
  std::unique_ptr<CnfBuilder> cnf_;
  std::vector<Lit> act_;
  std::vector<std::vector<std::vector<Lit>>> sel_;  // [slot][c][t]
  std::vector<std::vector<std::vector<Lit>>> m_;    // [k][row][q]
  std::vector<sat::CardinalityLadder> ladders_;     // [slot]
};

std::optional<circuit::Circuit> optimal_prep_fresh(
    const qec::StateContext& state, const BitMatrix& start,
    std::size_t lower_bound, const PrepSynthOptions& options) {
  const std::size_t n = state.num_qubits();
  const std::size_t r = start.rows();
  const qec::CouplingMap* map = options.coupling.get();
  const bool constrained = qec::coupling_constrained(map);
  if (constrained && map->num_edges() == 0) {
    return std::nullopt;  // No legal CNOT exists at all.
  }

  std::optional<sat::UnsatProof> last_unsat;
  std::size_t last_unsat_gates = 0;
  bool saw_unsat = false;
  for (std::size_t num_gates = lower_bound; num_gates <= options.max_cnots;
       ++num_gates) {
    auto solver_ptr = sat::make_engine_solver(options.engine,
                                              options.sat_conflict_budget);
    sat::SolverBase& solver = *solver_ptr;
    if (options.proof_sink != nullptr) {
      // On before any clause lands, so the logged premise is verbatim.
      solver.set_proof_logging(true);
    }
    CnfBuilder cnf(solver);

    // The search runs the circuit in reverse: apply column additions
    // (col t += col c, the self-inverse action of CNOT(c,t) on X-type
    // generators) to the target matrix until its support is confined to
    // at most r columns, i.e. the state became a product state.
    std::vector<std::vector<Lit>> m(r, std::vector<Lit>(n));
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t q = 0; q < n; ++q) {
        m[i][q] = cnf.constant(start.get(i, q));
      }
    }

    std::vector<std::vector<std::vector<Lit>>> selectors;  // [slot][c][t]
    for (std::size_t k = 0; k < num_gates; ++k) {
      std::vector<std::vector<Lit>> sel(n, std::vector<Lit>(n));
      std::vector<Lit> all;
      for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t t = 0; t < n; ++t) {
          // Illegal pairs are never encoded (see IncrementalPrepSearch).
          if (c == t || (constrained && !map->allows(c, t))) {
            continue;
          }
          sel[c][t] = cnf.fresh();
          all.push_back(sel[c][t]);
          // Pruning: adding a zero column is a no-op, and a minimal
          // circuit has none.
          std::vector<Lit> source_nonzero;
          source_nonzero.reserve(r + 1);
          source_nonzero.push_back(~sel[c][t]);
          for (std::size_t i = 0; i < r; ++i) {
            source_nonzero.push_back(m[i][c]);
          }
          solver.add_clause(source_nonzero);
          // Pruning: two identical adjacent ops cancel; a minimal circuit
          // has none.
          if (k > 0) {
            solver.add_binary(~selectors[k - 1][c][t], ~sel[c][t]);
          }
        }
      }
      cnf.add_exactly_one(all);

      // Symmetry breaking: adjacent ops (c,t), (c',t') commute iff
      // t != c' and t' != c; force commuting adjacent pairs into
      // lexicographically non-decreasing order.
      if (k > 0) {
        for (std::size_t c = 0; c < n; ++c) {
          for (std::size_t t = 0; t < n; ++t) {
            if (selectors[k - 1][c][t] == Lit::undef) {
              continue;
            }
            for (std::size_t c2 = 0; c2 < n; ++c2) {
              for (std::size_t t2 = 0; t2 < n; ++t2) {
                if (sel[c2][t2] == Lit::undef) {
                  continue;
                }
                const bool commute = (t != c2) && (t2 != c);
                const bool decreasing =
                    std::make_pair(c2, t2) < std::make_pair(c, t);
                if (commute && decreasing) {
                  solver.add_binary(~selectors[k - 1][c][t],
                                    ~sel[c2][t2]);
                }
              }
            }
          }
        }
      }

      std::vector<std::vector<Lit>> next(r, std::vector<Lit>(n));
      for (std::size_t q = 0; q < n; ++q) {
        for (std::size_t i = 0; i < r; ++i) {
          std::vector<Lit> adds;
          adds.reserve(n - 1);
          for (std::size_t c = 0; c < n; ++c) {
            if (c != q && sel[c][q] != Lit::undef) {
              adds.push_back(cnf.and_of({sel[c][q], m[i][c]}));
            }
          }
          next[i][q] = cnf.xor_of({m[i][q], cnf.or_of(adds)});
        }
      }
      m = std::move(next);
      selectors.push_back(std::move(sel));

      // Progress ladder: each op can zero at most one column, so with
      // G - k - 1 ops left the matrix may have at most r + (G - k - 1)
      // nonzero columns (the k = G - 1 case is the final product-state
      // condition).
      const std::size_t remaining = num_gates - k - 1;
      if (r + remaining < n) {
        std::vector<Lit> nonzero;
        nonzero.reserve(n);
        for (std::size_t q = 0; q < n; ++q) {
          std::vector<Lit> column(r);
          for (std::size_t i = 0; i < r; ++i) {
            column[i] = m[i][q];
          }
          nonzero.push_back(cnf.or_of(column));
        }
        cnf.add_at_most_k(nonzero, r + remaining);
      }
    }

    // SolveInterrupted (budget exhausted) propagates to the caller, which
    // must distinguish "gave up" from "proven infeasible" for the cache.
    if (!solver.solve()) {
      if (options.proof_sink != nullptr) {
        saw_unsat = true;
        last_unsat = solver.last_unsat_proof();
        last_unsat_gates = num_gates;
      }
      continue;
    }
    if (options.proof_sink != nullptr) {
      record_prep_outcome(*options.proof_sink, options.proof_label,
                          num_gates, saw_unsat, last_unsat,
                          last_unsat_gates);
    }

    // Decode: the reverse op sequence (c,t) per slot; the forward circuit
    // applies them in reverse order. |+> qubits are the final nonzero
    // columns.
    circuit::Circuit prep(n);
    BitVec plus(n);
    for (std::size_t q = 0; q < n; ++q) {
      for (std::size_t i = 0; i < r; ++i) {
        if (solver.model_value(m[i][q])) {
          plus.set(q);
          break;
        }
      }
    }
    for (std::size_t q = 0; q < n; ++q) {
      if (plus.get(q)) {
        prep.prep_x(q);
      } else {
        prep.prep_z(q);
      }
    }
    for (std::size_t k = num_gates; k-- > 0;) {
      for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t t = 0; t < n; ++t) {
          if (selectors[k][c][t] != Lit::undef &&
              solver.model_value(selectors[k][c][t])) {
            prep.cnot(c, t);
          }
        }
      }
    }
    return prep;
  }
  return std::nullopt;
}

std::string prep_cache_key(const BitMatrix& gens,
                           const PrepSynthOptions& options) {
  std::string key = "prep|" + options.engine.fingerprint();
  key += "|maxc=" + std::to_string(options.max_cnots);
  key += "|bud=" + std::to_string(options.sat_conflict_budget);
  key += "|bfs=";
  key += options.allow_bfs ? '1' : '0';
  // Unconstrained (null or all-to-all) adds nothing, keeping legacy warm
  // caches valid; constrained maps key on the structure fingerprint so
  // device-specific results never alias all-to-all ones.
  if (qec::coupling_constrained(options.coupling)) {
    key += "|coup=" + options.coupling->fingerprint();
  }
  key += "|G=" + cache_key_matrix(gens);
  return key;
}

}  // namespace

std::optional<circuit::Circuit> synthesize_prep_optimal(
    const qec::StateContext& state, const PrepSynthOptions& options) {
  const BitMatrix& gens = state.stabilizer_generators(qec::PauliType::X);
  const std::size_t n = state.num_qubits();
  check_coupling_sites(options.coupling.get(), n);

  std::string key;
  if (options.engine.use_cache) {
    key = prep_cache_key(gens, options);
    if (const auto hit = SynthCache::instance().lookup(key)) {
      if (options.proof_sink != nullptr) {
        options.proof_sink->record_absent(
            options.proof_label, "CNOT-minimal preparation circuit",
            "served from the synthesis cache; the refutations ran in the "
            "compile that populated it");
      }
      if (*hit == kCacheInfeasible) {
        return std::nullopt;
      }
      return circuit::Circuit::from_text(*hit, n);
    }
  }
  const auto finish = [&](std::optional<circuit::Circuit> result)
      -> std::optional<circuit::Circuit> {
    if (options.engine.use_cache) {
      SynthCache::instance().store(
          key, result.has_value() ? result->to_text() : kCacheInfeasible);
    }
    return result;
  };

  // Exact subspace BFS where the state space is small enough. Under a
  // constrained map the subspace graph only shrinks (fewer edges, same
  // node bound), so the same eligibility limit applies.
  if (options.allow_bfs) {
    const std::size_t space =
        count_subspaces(gens.cols(), f2::rank(gens), 400000);
    if (space <= 400000) {
      if (auto bfs = optimal_prep_bfs(state, options.coupling.get())) {
        if (options.proof_sink != nullptr) {
          options.proof_sink->record_absent(
              options.proof_label,
              std::to_string(bfs->cnot_count()) +
                  " CNOTs is the minimal preparation gate count",
              "exact breadth-first search over the subspace graph; no SAT "
              "query involved");
        }
        return finish(std::move(bfs));
      }
    }
  }

  auto rr = f2::rref(gens);
  rr.reduced.remove_zero_rows();
  const BitMatrix start = rr.reduced;
  const std::size_t r = start.rows();

  std::size_t nonzero_cols = 0;
  for (std::size_t q = 0; q < n; ++q) {
    if (start.column(q).any()) {
      ++nonzero_cols;
    }
  }
  const std::size_t lower_bound = nonzero_cols > r ? nonzero_cols - r : 0;

  if (lower_bound == 0) {
    // The generator matrix is already a product state: |+> on its
    // nonzero columns, no CNOTs.
    if (options.proof_sink != nullptr) {
      options.proof_sink->record_absent(
          options.proof_label,
          "0 CNOTs is the minimal preparation gate count",
          "the generator matrix is already a product state; no SAT query "
          "involved");
    }
    circuit::Circuit prep(n);
    for (std::size_t q = 0; q < n; ++q) {
      if (start.column(q).any()) {
        prep.prep_x(q);
      } else {
        prep.prep_z(q);
      }
    }
    return finish(std::move(prep));
  }

  if (options.engine.incremental) {
    IncrementalPrepSearch search(start, n, options);
    std::optional<circuit::Circuit> result;
    std::size_t found_gates = 0;
    std::optional<sat::UnsatProof> last_unsat;
    std::size_t last_unsat_gates = 0;
    bool saw_unsat = false;
    try {
      for (std::size_t gates = lower_bound;
           gates <= options.max_cnots && !result.has_value(); ++gates) {
        if (search.solve_for(gates)) {
          result = search.decode(gates);
          found_gates = gates;
        } else if (options.proof_sink != nullptr) {
          saw_unsat = true;
          last_unsat = search.solver().last_unsat_proof();
          last_unsat_gates = gates;
        }
      }
    } catch (const sat::SolverBase::SolveInterrupted&) {
      return std::nullopt;  // Budget exhausted: fall back, do not cache.
    }
    if (options.proof_sink != nullptr && result.has_value()) {
      record_prep_outcome(*options.proof_sink, options.proof_label,
                          found_gates, saw_unsat, last_unsat,
                          last_unsat_gates);
    }
    if (options.engine.use_cache && result.has_value()) {
      SynthCache::instance().dump_cnf(key, search.solver(),
                                      search.assumptions_for(found_gates));
    }
    return finish(std::move(result));
  }

  try {
    return finish(optimal_prep_fresh(state, start, lower_bound, options));
  } catch (const sat::SolverBase::SolveInterrupted&) {
    return std::nullopt;  // Budget exhausted: fall back, do not cache.
  }
}

}  // namespace ftsp::core
