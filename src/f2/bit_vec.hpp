#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace ftsp::f2 {

/// A fixed-length vector over F2, packed into 64-bit words.
///
/// `BitVec` is the workhorse value type of the library: Pauli supports,
/// stabilizer rows, syndromes and error patterns are all `BitVec`s. It is a
/// regular type (copyable, movable, equality-comparable, hashable) with
/// value semantics.
class BitVec {
 public:
  BitVec() = default;

  /// Creates an all-zero vector of `size` bits.
  explicit BitVec(std::size_t size);

  /// Creates a vector of `size` bits with the listed positions set.
  BitVec(std::size_t size, std::initializer_list<std::size_t> ones);

  /// Parses a string of '0'/'1' characters (most significant index last,
  /// i.e. `s[i]` is bit `i`). Characters '_', ' ' and '.' are skipped so
  /// check-matrix literals can be grouped for readability.
  static BitVec from_string(const std::string& s);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value = true);
  void flip(std::size_t i);
  void clear();

  /// Number of set bits.
  std::size_t popcount() const;

  /// True iff any bit is set.
  bool any() const;
  bool none() const { return !any(); }

  /// In-place XOR with `other`. Both vectors must have equal size.
  BitVec& operator^=(const BitVec& other);
  /// In-place AND with `other`. Both vectors must have equal size.
  BitVec& operator&=(const BitVec& other);
  /// In-place OR with `other`. Both vectors must have equal size.
  BitVec& operator|=(const BitVec& other);

  friend BitVec operator^(BitVec lhs, const BitVec& rhs) { return lhs ^= rhs; }
  friend BitVec operator&(BitVec lhs, const BitVec& rhs) { return lhs &= rhs; }
  friend BitVec operator|(BitVec lhs, const BitVec& rhs) { return lhs |= rhs; }

  bool operator==(const BitVec& other) const = default;

  /// Standard inner product over F2: parity of the AND of both vectors.
  /// For CSS codes this is the symplectic form between an X-type and a
  /// Z-type Pauli, i.e. `dot() == 1` iff the operators anticommute.
  bool dot(const BitVec& other) const;

  /// Index of the lowest set bit, or `size()` if none.
  std::size_t lowest_set() const;

  /// Indices of all set bits, ascending.
  std::vector<std::size_t> ones() const;

  /// Lexicographic comparison as an integer with bit 0 least significant.
  /// Gives a total order used for canonicalization and as map keys.
  bool lex_less(const BitVec& other) const;

  /// Renders as a '0'/'1' string, bit 0 first.
  std::string to_string() const;

  /// FNV-1a style hash over the packed words.
  std::size_t hash() const;

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;

  static std::size_t word_count(std::size_t size) { return (size + 63) / 64; }
  void check_same_size(const BitVec& other) const;
};

struct BitVecHash {
  std::size_t operator()(const BitVec& v) const { return v.hash(); }
};

struct BitVecLexLess {
  bool operator()(const BitVec& a, const BitVec& b) const {
    return a.lex_less(b);
  }
};

}  // namespace ftsp::f2
