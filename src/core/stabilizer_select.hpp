#pragma once

#include <cstddef>
#include <functional>
#include <unordered_map>
#include <vector>

#include "f2/bit_matrix.hpp"
#include "f2/bit_vec.hpp"
#include "sat/cnf_builder.hpp"

namespace ftsp::core {

/// Shared SAT encoding for "choose u stabilizers from the span of given
/// generators": the backbone of both verification- and correction-circuit
/// synthesis (Section IV of the paper).
///
/// Row i of the selection is s_i = sum_r alpha[i][r] * G_r over F2. Because
/// the generators are constants, both the support bits s_i[q] and the
/// syndrome bit <e, s_i> of a constant error e are plain parities of the
/// alpha variables, encoded with Tseitin XOR chains.
class StabilizerSelection {
 public:
  StabilizerSelection(sat::CnfBuilder& cnf, const f2::BitMatrix& generators,
                      std::size_t num_stabilizers);

  std::size_t count() const { return u_; }
  std::size_t num_qubits() const { return generators_->cols(); }

  /// Support bit s_i[q] as a literal.
  sat::Lit support_bit(std::size_t i, std::size_t q);

  /// Syndrome literal <error, s_i> (1 iff the error anticommutes with the
  /// selected stabilizer i). Cached per (i, anticommute-pattern).
  sat::Lit syndrome_bit(std::size_t i, const f2::BitVec& error);

  /// Requires every selected stabilizer to be nonzero.
  void require_nonzero();

  /// Bounds the summed support weight of all selections by v
  /// (the total CNOT count of the measurements).
  void bound_total_weight(std::size_t v);

  /// Assumption-based alternative to `bound_total_weight`: encodes the
  /// weight counter once; each bound v < max_bound is then enforced per
  /// solve by assuming `ladder.at_most(v)`. The backbone of incremental
  /// (u, v)-optimum sweeps.
  sat::CardinalityLadder make_total_weight_ladder(std::size_t max_bound);

  /// Orders selections strictly by their alpha words to break the row
  /// permutation symmetry (valid because equal rows are never useful).
  void break_symmetry();

  /// Restricts every selection to supports accepted by `allowed` — the
  /// coupling-map hook: only measurements realizable on the device stay
  /// in the search space. Since a support is determined by its alpha
  /// combination, the 2^r - 1 nonzero combinations are enumerated and
  /// each rejected one is blocked with one clause per selection row.
  /// Throws std::runtime_error when generators.rows() exceeds
  /// `kMaxRestrictRows` (the enumeration would be impractical).
  void restrict_supports(
      const std::function<bool(const f2::BitVec&)>& allowed);

  static constexpr std::size_t kMaxRestrictRows = 16;

  /// After a satisfying solve: the support of stabilizer i in the model.
  f2::BitVec extract(const sat::SolverBase& solver, std::size_t i) const;

  /// Blocks the current model's selection (for all-solution enumeration).
  void block_model(sat::SolverBase& solver);

 private:
  sat::CnfBuilder* cnf_;
  const f2::BitMatrix* generators_;
  std::size_t u_;
  std::vector<std::vector<sat::Lit>> alpha_;  // [i][r]
  std::vector<std::vector<sat::Lit>> support_;  // [i][q], lazily defined
  std::vector<std::unordered_map<std::string, sat::Lit>> syndrome_cache_;

  sat::Lit parity_over(std::size_t i, const f2::BitVec& row_mask);
};

}  // namespace ftsp::core
