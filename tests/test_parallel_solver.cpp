// ParallelSolver: correctness against the sequential solver and brute
// force, and the determinism contract — for a fixed seed, verdict AND
// model are identical at any thread count (1, 2, 8), in both portfolio
// and cube-and-conquer modes.
#include "sat/parallel_solver.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "sat/cnf_builder.hpp"
#include "sat/dimacs.hpp"

namespace ftsp::sat {
namespace {

CnfFormula random_3sat(std::uint64_t seed, int num_vars, int num_clauses) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pick(0, num_vars - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  CnfFormula f;
  f.num_vars = num_vars;
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(Lit(pick(rng), coin(rng) != 0));
    }
    f.clauses.push_back(clause);
  }
  return f;
}

bool brute_force_sat(const CnfFormula& f) {
  for (unsigned assignment = 0;
       assignment < (1u << static_cast<unsigned>(f.num_vars));
       ++assignment) {
    bool all = true;
    for (const auto& clause : f.clauses) {
      bool any = false;
      for (Lit l : clause) {
        const bool value = ((assignment >> l.var()) & 1u) != 0;
        any = any || (value != l.sign());
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) {
      return true;
    }
  }
  return false;
}

bool model_satisfies(const SolverBase& s, const CnfFormula& f) {
  for (const auto& clause : f.clauses) {
    bool satisfied = false;
    for (Lit l : clause) {
      satisfied = satisfied || s.model_value(l);
    }
    if (!satisfied) {
      return false;
    }
  }
  return true;
}

void add_pigeonhole(SolverBase& s, int pigeons, int holes) {
  std::vector<std::vector<Var>> p(static_cast<std::size_t>(pigeons));
  for (auto& row : p) {
    for (int h = 0; h < holes; ++h) {
      row.push_back(s.new_var());
    }
  }
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) {
      clause.push_back(pos(p[static_cast<std::size_t>(i)]
                            [static_cast<std::size_t>(h)]));
    }
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int i = 0; i < pigeons; ++i) {
      for (int j = i + 1; j < pigeons; ++j) {
        s.add_binary(neg(p[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(h)]),
                     neg(p[static_cast<std::size_t>(j)]
                          [static_cast<std::size_t>(h)]));
      }
    }
  }
}

TEST(ParallelSolver, AgreesWithBruteForceAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const CnfFormula f = random_3sat(seed * 131 + 17, 10, 42);
    ParallelSolverOptions options;
    options.num_threads = 2;
    options.num_configs = 4;
    options.seed = seed + 1;
    ParallelSolver solver(options);
    f.load_into(solver);
    const bool sat = solver.solve();
    EXPECT_EQ(sat, brute_force_sat(f)) << "seed " << seed;
    if (sat) {
      EXPECT_TRUE(model_satisfies(solver, f));
    }
  }
}

TEST(ParallelSolver, PigeonholeUnsatAnyMode) {
  for (const std::size_t cube_vars : {std::size_t{0}, std::size_t{3}}) {
    ParallelSolverOptions options;
    options.num_threads = 4;
    options.num_configs = 4;
    options.cube_vars = cube_vars;
    options.round_conflicts = 256;
    ParallelSolver solver(options);
    add_pigeonhole(solver, 7, 6);
    EXPECT_FALSE(solver.solve());
    EXPECT_FALSE(solver.okay());
    EXPECT_GT(solver.stats().conflicts, 0u);
  }
}

/// The determinism contract: identical model bits at 1, 2 and 8 threads.
TEST(ParallelSolver, ModelIsIdenticalAcrossThreadCounts) {
  for (const std::size_t cube_vars : {std::size_t{0}, std::size_t{2}}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const CnfFormula f = random_3sat(seed * 977 + 5, 14, 56);
      std::vector<std::vector<bool>> models;
      std::vector<bool> verdicts;
      std::vector<std::size_t> winners;
      for (const std::size_t threads :
           {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        ParallelSolverOptions options;
        options.num_threads = threads;
        options.num_configs = 4;
        options.cube_vars = cube_vars;
        options.seed = seed;
        options.round_conflicts = 128;  // Small: force multiple rounds.
        ParallelSolver solver(options);
        f.load_into(solver);
        const bool sat = solver.solve();
        verdicts.push_back(sat);
        winners.push_back(solver.last_winner());
        std::vector<bool> model;
        if (sat) {
          for (Var v = 0; v < solver.num_vars(); ++v) {
            model.push_back(solver.model_value(v));
          }
        }
        models.push_back(std::move(model));
      }
      EXPECT_EQ(verdicts[0], verdicts[1]);
      EXPECT_EQ(verdicts[0], verdicts[2]);
      EXPECT_EQ(winners[0], winners[1])
          << "cube=" << cube_vars << " seed " << seed;
      EXPECT_EQ(winners[0], winners[2])
          << "cube=" << cube_vars << " seed " << seed;
      EXPECT_EQ(models[0], models[1])
          << "cube=" << cube_vars << " seed " << seed;
      EXPECT_EQ(models[0], models[2])
          << "cube=" << cube_vars << " seed " << seed;
    }
  }
}

/// Determinism must also hold across repeated solves on the same engine
/// (incremental use: clauses added between solves, winner state reused).
TEST(ParallelSolver, IncrementalEnumerationIsDeterministic) {
  const CnfFormula f = random_3sat(4242, 12, 30);
  std::vector<std::vector<std::vector<bool>>> runs;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ParallelSolverOptions options;
    options.num_threads = threads;
    options.num_configs = 3;
    options.seed = 7;
    options.round_conflicts = 64;
    ParallelSolver solver(options);
    f.load_into(solver);
    std::vector<std::vector<bool>> models;
    while (models.size() < 5 && solver.okay() && solver.solve()) {
      std::vector<bool> model;
      std::vector<Lit> block;
      for (Var v = 0; v < f.num_vars; ++v) {
        model.push_back(solver.model_value(v));
        block.push_back(solver.model_value(v) ? neg(v) : pos(v));
      }
      models.push_back(std::move(model));
      solver.add_clause(block);
    }
    runs.push_back(std::move(models));
  }
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(ParallelSolver, AssumptionsWork) {
  ParallelSolverOptions options;
  options.num_threads = 2;
  options.num_configs = 3;
  ParallelSolver solver(options);
  const Var a = solver.new_var();
  const Var b = solver.new_var();
  solver.add_binary(pos(a), pos(b));
  ASSERT_TRUE(solver.solve({neg(a)}));
  EXPECT_FALSE(solver.model_value(a));
  EXPECT_TRUE(solver.model_value(b));
  EXPECT_FALSE(solver.solve({neg(a), neg(b)}));
  EXPECT_TRUE(solver.okay());  // UNSAT under assumptions only.
  EXPECT_TRUE(solver.solve());
}

TEST(ParallelSolver, ConflictBudgetThrows) {
  ParallelSolverOptions options;
  options.num_threads = 2;
  options.num_configs = 2;
  options.round_conflicts = 64;
  ParallelSolver solver(options);
  add_pigeonhole(solver, 9, 8);
  solver.set_conflict_budget(100);
  EXPECT_THROW(solver.solve(), SolverBase::SolveInterrupted);
}

TEST(ParallelSolver, CubeModeFindsModelsEquivalentToPortfolio) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const CnfFormula f = random_3sat(seed * 31 + 2, 12, 48);
    ParallelSolverOptions cube_options;
    cube_options.num_threads = 4;
    cube_options.cube_vars = 3;
    cube_options.seed = seed;
    ParallelSolver cube_solver(cube_options);
    f.load_into(cube_solver);
    Solver reference;
    f.load_into(reference);
    const bool cube_sat = cube_solver.solve();
    EXPECT_EQ(cube_sat, reference.solve()) << "seed " << seed;
    if (cube_sat) {
      EXPECT_TRUE(model_satisfies(cube_solver, f));
    }
  }
}

TEST(SolverStatsOps, ResetAndDeltas) {
  Solver solver;
  add_pigeonhole(solver, 4, 4);  // Satisfiable: one pigeon per hole.
  ASSERT_TRUE(solver.solve());
  const SolverStats first = solver.stats();
  EXPECT_GT(first.decisions, 0u);
  solver.reset_stats();
  EXPECT_EQ(solver.stats().decisions, 0u);
  EXPECT_EQ(solver.stats().conflicts, 0u);
  // Deltas across a second solve are attributable to it alone.
  ASSERT_TRUE(solver.solve());
  const SolverStats second = solver.stats();
  const SolverStats sum = first + second;
  EXPECT_EQ(sum.decisions, first.decisions + second.decisions);
  const SolverStats diff = sum - first;
  EXPECT_EQ(diff.decisions, second.decisions);
}

TEST(SolverConfig, DiversifiedConfigsAgreeOnVerdict) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const CnfFormula f = random_3sat(seed * 53 + 11, 10, 41);
    const bool expected = brute_force_sat(f);
    for (std::size_t config = 0; config < 4; ++config) {
      SolverConfig c;
      c.seed = seed + 100 * config;
      c.random_branch_freq = 0.01 * static_cast<double>(config);
      c.initial_phase = (config % 2) != 0;
      c.restart_base = 64 << (config % 3);
      Solver solver(c);
      f.load_into(solver);
      EXPECT_EQ(solver.solve(), expected)
          << "seed " << seed << " config " << config;
    }
  }
}

TEST(SolverLimited, ReturnsUndefOnTinyBudgetAndResumesWarm) {
  Solver solver;
  add_pigeonhole(solver, 8, 7);
  EXPECT_EQ(solver.solve_limited({}, 5), LBool::Undef);
  // Resumable: enough budget eventually refutes it.
  LBool result = LBool::Undef;
  for (int round = 0; round < 64 && result == LBool::Undef; ++round) {
    result = solver.solve_limited({}, 2000);
  }
  EXPECT_EQ(result, LBool::False);
}

TEST(SolverInterrupt, FlagCancelsSolve) {
  Solver solver;
  add_pigeonhole(solver, 8, 7);
  std::atomic<bool> flag{true};
  solver.set_interrupt_flag(&flag);
  EXPECT_EQ(solver.solve_limited({}, 0), LBool::Undef);
  EXPECT_THROW(solver.solve(), SolverBase::SolveInterrupted);
  flag.store(false);
  EXPECT_FALSE(solver.solve());
}

TEST(SolverExport, ProblemClausesRoundTrip) {
  Solver solver;
  const Var a = solver.new_var();
  const Var b = solver.new_var();
  const Var c = solver.new_var();
  // Ternary first: a later unit would simplify it away at level 0.
  solver.add_ternary(neg(a), pos(b), pos(c));
  solver.add_unit(pos(a));
  const auto clauses = solver.problem_clauses();
  // The unit appears (as a level-0 trail entry) and the ternary survives.
  bool has_unit = false;
  bool has_ternary = false;
  for (const auto& clause : clauses) {
    has_unit = has_unit || (clause.size() == 1 && clause[0] == pos(a));
    has_ternary = has_ternary || clause.size() == 3;
  }
  EXPECT_TRUE(has_unit);
  EXPECT_TRUE(has_ternary);
  // Loading the export into a fresh solver preserves satisfiability.
  CnfFormula f;
  f.num_vars = solver.num_vars();
  f.clauses = clauses;
  Solver fresh;
  f.load_into(fresh);
  EXPECT_TRUE(fresh.solve());
  EXPECT_TRUE(fresh.model_value(a));
}

}  // namespace
}  // namespace ftsp::sat
