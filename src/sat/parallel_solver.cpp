#include "sat/parallel_solver.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

#include "obs/registry.hpp"

namespace ftsp::sat {

namespace {

/// Records the deterministic referee's verdict for one portfolio race.
void record_portfolio_winner(std::size_t winner) {
  if (!obs::enabled()) {
    return;
  }
  static obs::Counter& races =
      obs::Registry::instance().counter("sat.portfolio.race.count");
  static obs::Gauge& winner_index =
      obs::Registry::instance().gauge("sat.portfolio.winner.index");
  races.add(1);
  winner_index.set(static_cast<std::int64_t>(winner));
}

void record_portfolio_round() {
  if (!obs::enabled()) {
    return;
  }
  static obs::Counter& rounds =
      obs::Registry::instance().counter("sat.portfolio.round.count");
  rounds.add(1);
}

}  // namespace

ParallelSolver::ParallelSolver(const ParallelSolverOptions& options)
    : opts_(options) {
  opts_.num_threads = std::max<std::size_t>(opts_.num_threads, 1);
  opts_.num_configs = std::max<std::size_t>(opts_.num_configs, 1);
  opts_.round_conflicts = std::max<std::uint64_t>(opts_.round_conflicts, 64);
}

ParallelSolver::~ParallelSolver() = default;

Var ParallelSolver::new_var() { return num_vars_++; }

bool ParallelSolver::add_clause(std::span<const Lit> lits) {
  if (!ok_) {
    return false;
  }
  if (lits.empty()) {
    if (proof_logging_) {
      // The caller added the empty clause itself: the refutation is the
      // premise (which contains it) plus the trivial final step.
      UnsatProof proof;
      proof.premise = clauses_;
      proof.premise.emplace_back();
      proof.drat = "0\n";
      last_proof_ = std::move(proof);
    }
    ok_ = false;
    return false;
  }
  clauses_.emplace_back(lits.begin(), lits.end());
  return true;
}

void ParallelSolver::set_proof_logging(bool enable) {
  if (enable == proof_logging_) {
    return;
  }
  proof_logging_ = enable;
  last_proof_.reset();
  // Live workers recorded their premise (or none) under the old setting;
  // taint them so the next sync replays every clause with the new one.
  for (auto& w : workers_) {
    if (w) {
      w->tainted = true;
    }
  }
}

SolverConfig ParallelSolver::config_for(std::size_t index) const {
  SolverConfig c;
  c.seed = opts_.seed ^ (0x9E3779B97F4A7C15ULL * (index + 1));
  if (index == 0) {
    return c;  // Reference configuration: identical to a plain Solver.
  }
  c.random_branch_freq = 0.005 * static_cast<double>(index % 4);
  c.initial_phase = (index % 2) != 0;
  c.restart_base = std::uint64_t{64} << (index % 3);
  c.var_activity_decay = (index % 3 == 2) ? 0.92 : 0.95;
  return c;
}

void ParallelSolver::sync_worker(std::size_t index) {
  if (workers_.size() <= index) {
    workers_.resize(index + 1);
  }
  if (!workers_[index]) {
    workers_[index] = std::make_unique<Worker>();
  }
  Worker& w = *workers_[index];
  if (!w.solver || w.tainted) {
    if (w.solver) {
      retired_stats_ += w.solver->stats();
    }
    w.solver = std::make_unique<Solver>(config_for(index));
    w.solver->set_interrupt_flag(&w.interrupt);
    // Before the clause replay below, so the premise is verbatim.
    w.solver->set_proof_logging(proof_logging_);
    w.clauses_loaded = 0;
    w.tainted = false;
  }
  while (w.solver->num_vars() < num_vars_) {
    w.solver->new_var();
  }
  for (; w.clauses_loaded < clauses_.size(); ++w.clauses_loaded) {
    w.solver->add_clause(clauses_[w.clauses_loaded]);
  }
  w.interrupt.store(false, std::memory_order_relaxed);
}

std::vector<Var> ParallelSolver::pick_cube_vars(std::size_t count) const {
  std::vector<std::uint64_t> occurrences(
      static_cast<std::size_t>(num_vars_), 0);
  for (const auto& clause : clauses_) {
    for (const Lit l : clause) {
      ++occurrences[static_cast<std::size_t>(l.var())];
    }
  }
  std::vector<Var> vars(static_cast<std::size_t>(num_vars_));
  for (Var v = 0; v < num_vars_; ++v) {
    vars[static_cast<std::size_t>(v)] = v;
  }
  std::stable_sort(vars.begin(), vars.end(), [&](Var a, Var b) {
    return occurrences[static_cast<std::size_t>(a)] >
           occurrences[static_cast<std::size_t>(b)];
  });
  vars.resize(std::min(count, vars.size()));
  return vars;
}

bool ParallelSolver::solve(std::span<const Lit> assumptions) {
  model_.clear();
  if (!ok_) {
    // A refutation of the formula alone (captured when ok_ dropped) also
    // refutes it under any assumptions, so last_proof_ stays valid.
    return false;
  }
  if (proof_logging_) {
    last_proof_.reset();
  }

  // Build the per-problem assumption vectors: every portfolio member gets
  // the caller's assumptions; cube mode appends one sign pattern over the
  // most frequent variables per problem (the cubes partition the space).
  const bool cube_mode = opts_.cube_vars > 0 && num_vars_ > 0;
  std::vector<std::vector<Lit>> problem_assumptions;
  if (cube_mode) {
    const std::vector<Var> cube_vars =
        pick_cube_vars(std::min<std::size_t>(opts_.cube_vars, 16));
    const std::size_t cubes = std::size_t{1} << cube_vars.size();
    problem_assumptions.resize(cubes);
    for (std::size_t cube = 0; cube < cubes; ++cube) {
      auto& a = problem_assumptions[cube];
      a.assign(assumptions.begin(), assumptions.end());
      for (std::size_t b = 0; b < cube_vars.size(); ++b) {
        a.push_back(Lit(cube_vars[b], ((cube >> b) & 1U) == 0));
      }
    }
  } else {
    problem_assumptions.assign(
        opts_.num_configs,
        std::vector<Lit>(assumptions.begin(), assumptions.end()));
  }
  const std::size_t problems = problem_assumptions.size();

  for (std::size_t i = 0; i < problems; ++i) {
    sync_worker(i);
  }

  // Single problem: no race to referee, run inline and unlimited.
  if (problems == 1) {
    Worker& w = *workers_[0];
    const LBool r =
        w.solver->solve_limited(problem_assumptions[0], conflict_budget_);
    if (r == LBool::Undef) {
      throw SolveInterrupted{};
    }
    last_winner_ = 0;
    record_portfolio_winner(0);
    const bool sat = (r == LBool::True);
    if (sat) {
      model_.resize(static_cast<std::size_t>(num_vars_));
      for (Var v = 0; v < num_vars_; ++v) {
        model_[static_cast<std::size_t>(v)] = w.solver->model_value(v);
      }
    } else {
      if (proof_logging_ && !cube_mode) {
        last_proof_ = w.solver->last_unsat_proof();
      }
      if (assumptions.empty() && !cube_mode) {
        ok_ = false;
      }
    }
    return sat;
  }

  std::vector<LBool> results(problems, LBool::Undef);
  std::uint64_t round_budget = opts_.round_conflicts;
  std::uint64_t spent = 0;

  for (;;) {
    if (conflict_budget_ != 0 && spent >= conflict_budget_) {
      throw SolveInterrupted{};
    }
    // The budget caps each configuration's cumulative conflicts (matching
    // the sequential solver's per-call semantics), so the final round is
    // clamped to the remainder instead of overshooting by a full round.
    const std::uint64_t effective_budget =
        conflict_budget_ != 0
            ? std::min(round_budget, conflict_budget_ - spent)
            : round_budget;

    std::atomic<std::size_t> next{0};
    // Lowest problem index whose verdict makes every higher index
    // irrelevant (any verdict in portfolio mode, SAT in cube mode).
    // Seeded from earlier rounds' recorded verdicts, which are
    // deterministic, so the skip set is too.
    std::size_t initial_cancel = problems;
    for (std::size_t i = 0; i < problems; ++i) {
      if (results[i] == LBool::True) {
        initial_cancel = i;
        break;
      }
    }
    std::atomic<std::size_t> cancel_above{initial_cancel};

    const auto job_loop = [&]() {
      for (;;) {
        const std::size_t i =
            next.fetch_add(1, std::memory_order_relaxed);
        if (i >= problems) {
          return;
        }
        Worker& w = *workers_[i];
        if (results[i] != LBool::Undef) {
          continue;  // Decided in an earlier round (cube mode).
        }
        if (i > cancel_above.load(std::memory_order_acquire)) {
          w.tainted = true;  // Skipped: state would be schedule-dependent.
          continue;
        }
        const LBool r =
            w.solver->solve_limited(problem_assumptions[i], effective_budget);
        if (w.interrupt.load(std::memory_order_relaxed)) {
          w.tainted = true;  // Cancelled mid-run; discard partial state.
          continue;
        }
        results[i] = r;
        const bool decisive =
            cube_mode ? (r == LBool::True) : (r != LBool::Undef);
        if (decisive) {
          std::size_t expected = cancel_above.load();
          while (i < expected &&
                 !cancel_above.compare_exchange_weak(expected, i)) {
          }
          for (std::size_t j = i + 1; j < problems; ++j) {
            workers_[j]->interrupt.store(true, std::memory_order_relaxed);
          }
        }
      }
    };

    record_portfolio_round();
    const std::size_t thread_count =
        std::min(opts_.num_threads, problems);
    if (thread_count <= 1) {
      job_loop();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(thread_count);
      for (std::size_t t = 0; t < thread_count; ++t) {
        pool.emplace_back(job_loop);
      }
      for (auto& t : pool) {
        t.join();
      }
    }

    // Referee. Portfolio: lowest index with any verdict wins. Cube:
    // scanning ascending, the first non-UNSAT cube wins if it is SAT
    // (all earlier cubes refuted); an undecided cube blocks.
    std::size_t winner = problems;
    bool unsat_everywhere = true;
    for (std::size_t i = 0; i < problems; ++i) {
      if (results[i] == LBool::Undef) {
        unsat_everywhere = false;
        if (!cube_mode) {
          continue;
        }
        break;
      }
      if (results[i] == LBool::True) {
        winner = i;
        unsat_everywhere = false;
        break;
      }
      if (!cube_mode) {
        winner = i;  // UNSAT verdict: configuration-independent.
        unsat_everywhere = false;
        break;
      }
    }
    if (cube_mode && unsat_everywhere) {
      winner = 0;  // Every cube refuted: the formula is UNSAT.
    }

    if (winner != problems || (cube_mode && unsat_everywhere)) {
      last_winner_ = winner;
      record_portfolio_winner(winner);
      const bool sat = results[winner] == LBool::True;
      if (sat) {
        const Solver& s = *workers_[winner]->solver;
        model_.resize(static_cast<std::size_t>(num_vars_));
        for (Var v = 0; v < num_vars_; ++v) {
          model_[static_cast<std::size_t>(v)] = s.model_value(v);
        }
      } else {
        if (proof_logging_ && !cube_mode) {
          last_proof_ = workers_[winner]->solver->last_unsat_proof();
        }
        if (assumptions.empty()) {
          ok_ = false;
        }
      }
      for (std::size_t i = 0; i < problems; ++i) {
        if (i != winner) {
          workers_[i]->tainted = true;
        }
      }
      return sat;
    }

    spent += effective_budget;
    round_budget *= 2;
  }
}

bool ParallelSolver::model_value(Var v) const {
  assert(!model_.empty());
  return model_[static_cast<std::size_t>(v)];
}

SolverStats ParallelSolver::stats() const {
  SolverStats total = retired_stats_;
  for (const auto& w : workers_) {
    if (w && w->solver) {
      total += w->solver->stats();
    }
  }
  return total;
}

void ParallelSolver::reset_stats() {
  retired_stats_ = SolverStats{};
  for (auto& w : workers_) {
    if (w && w->solver) {
      w->solver->reset_stats();
    }
  }
}

std::vector<std::vector<Lit>> ParallelSolver::problem_clauses() const {
  return clauses_;
}

std::string EngineOptions::fingerprint() const {
  std::string f = "inc=";
  f += incremental ? '1' : '0';
  f += ",cfg=" + std::to_string(num_configs);
  f += ",cube=" + std::to_string(cube_vars);
  // The sequential solver ignores the racing knobs; leaving them out of
  // the fingerprint lets configurations that compute identical results
  // share cache entries.
  if (num_configs > 1 || cube_vars > 0) {
    f += ",seed=" + std::to_string(seed);
    f += ",rc=" + std::to_string(round_conflicts);
  }
  return f;
}

namespace {
std::atomic<std::uint64_t> g_engine_invocations{0};
}  // namespace

std::uint64_t engine_solver_invocations() {
  return g_engine_invocations.load(std::memory_order_relaxed);
}

void reset_engine_solver_invocations() {
  g_engine_invocations.store(0, std::memory_order_relaxed);
}

std::unique_ptr<SolverBase> make_engine_solver(
    const EngineOptions& engine, std::uint64_t conflict_budget) {
  g_engine_invocations.fetch_add(1, std::memory_order_relaxed);
  std::unique_ptr<SolverBase> solver;
  if (engine.num_configs <= 1 && engine.cube_vars == 0) {
    solver = std::make_unique<Solver>();
  } else {
    ParallelSolverOptions options;
    options.num_threads = engine.num_threads;
    options.num_configs = engine.num_configs;
    options.cube_vars = engine.cube_vars;
    options.seed = engine.seed;
    options.round_conflicts = engine.round_conflicts;
    solver = std::make_unique<ParallelSolver>(options);
  }
  solver->set_conflict_budget(conflict_budget);
  return solver;
}

}  // namespace ftsp::sat
