#include "core/measure_prep.hpp"

#include <gtest/gtest.h>

#include "core/executor.hpp"
#include "core/protocol.hpp"
#include "core/samplers.hpp"
#include "f2/gauss.hpp"
#include "qec/code_library.hpp"
#include "sim/tableau.hpp"

namespace ftsp::core {
namespace {

using qec::LogicalBasis;
using qec::PauliType;

TEST(MeasurePrep, OneGadgetPerGenerator) {
  const auto code = qec::steane();
  const qec::StateContext state(code, LogicalBasis::Zero);
  const auto prep = synthesize_measure_prep(state);
  EXPECT_EQ(prep.gadgets.size(), code.hx().rows());
  for (std::size_t i = 0; i < prep.gadgets.size(); ++i) {
    EXPECT_EQ(prep.gadgets[i].stabilizer_type, PauliType::X);
    EXPECT_EQ(prep.gadgets[i].support, code.hx().row(i));
  }
}

TEST(MeasurePrep, FixesAreDestabilizers) {
  const auto code = qec::surface3();
  const qec::StateContext state(code, LogicalBasis::Zero);
  const auto prep = synthesize_measure_prep(state);
  const auto& hx = code.hx();
  for (std::size_t i = 0; i < prep.outcome_fixes.rows(); ++i) {
    const auto syndrome = hx.multiply(prep.outcome_fixes.row(i));
    for (std::size_t j = 0; j < hx.rows(); ++j) {
      EXPECT_EQ(syndrome.get(j), i == j)
          << "fix " << i << " vs generator " << j;
    }
  }
}

TEST(MeasurePrep, NoiselessRunPreparesLogicalZero) {
  // Run on the tableau, apply the outcome fixes for the observed random
  // outcomes, and verify the resulting state is exactly |0>_L.
  const auto code = qec::steane();
  const qec::StateContext state(code, LogicalBasis::Zero);
  const auto prep = synthesize_measure_prep(state);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    sim::Tableau tableau(prep.circuit.num_qubits());
    std::mt19937_64 rng(seed);
    const auto outcomes = tableau.run(prep.circuit, rng);
    for (std::size_t i = 0; i < prep.gadgets.size(); ++i) {
      if (outcomes[static_cast<std::size_t>(
              prep.gadgets[i].outcome_bit)]) {
        for (std::size_t q : prep.outcome_fixes.row(i).ones()) {
          tableau.apply_z(q);
        }
      }
    }
    for (std::size_t i = 0; i < state.stabilizer_generators(PauliType::X)
                                     .rows();
         ++i) {
      qec::Pauli p(prep.circuit.num_qubits());
      for (std::size_t q :
           state.stabilizer_generators(PauliType::X).row(i).ones()) {
        p.x.set(q);
      }
      EXPECT_TRUE(tableau.stabilizes(p)) << "seed " << seed;
    }
    for (std::size_t i = 0; i < state.stabilizer_generators(PauliType::Z)
                                     .rows();
         ++i) {
      qec::Pauli p(prep.circuit.num_qubits());
      for (std::size_t q :
           state.stabilizer_generators(PauliType::Z).row(i).ones()) {
        p.z.set(q);
      }
      EXPECT_TRUE(tableau.stabilizes(p)) << "seed " << seed;
    }
  }
}

TEST(MeasurePrep, ZeroNoiseHasZeroLogicalError) {
  const auto code = qec::steane();
  const qec::StateContext state(code, LogicalBasis::Zero);
  const auto prep = synthesize_measure_prep(state);
  const decoder::PerfectDecoder decoder(code);
  const auto stats =
      sample_measure_prep(prep, state, decoder, 0.0, 500, 3);
  EXPECT_EQ(stats.logical_error_rate, 0.0);
}

TEST(MeasurePrep, OneRoundScalesLinearlyNotQuadratically) {
  // The motivating contrast: one-round measurement-based preparation has
  // p_L = O(p) (hooks and measurement faults go unchecked), while the
  // deterministic verified protocol reaches O(p^2).
  const auto code = qec::steane();
  const qec::StateContext state(code, LogicalBasis::Zero);
  const auto prep = synthesize_measure_prep(state);
  const decoder::PerfectDecoder decoder(code);
  const auto at_2em2 =
      sample_measure_prep(prep, state, decoder, 0.02, 40000, 5);
  const auto at_2em3 =
      sample_measure_prep(prep, state, decoder, 0.002, 40000, 6);
  ASSERT_GT(at_2em3.logical_error_rate, 0.0);
  const double ratio =
      at_2em2.logical_error_rate / at_2em3.logical_error_rate;
  // Linear scaling predicts ~10; quadratic would predict ~100.
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 35.0);

  // And the deterministic protocol beats it at the same p.
  const auto protocol = synthesize_protocol(code, LogicalBasis::Zero);
  const Executor executor(protocol);
  const auto batch =
      sample_protocol_batch(executor, decoder, 0.002, 40000, 7);
  const auto det = estimate_logical_rate({batch}, 0.002);
  EXPECT_LT(det.mean, at_2em3.logical_error_rate);
}

TEST(MeasurePrep, PlusBasisMirrors) {
  const auto code = qec::steane();
  const qec::StateContext state(code, LogicalBasis::Plus);
  const auto prep = synthesize_measure_prep(state);
  EXPECT_EQ(prep.gadgets.size(), code.hz().rows());
  for (const auto& gadget : prep.gadgets) {
    EXPECT_EQ(gadget.stabilizer_type, PauliType::Z);
  }
}

TEST(MeasurePrep, StatsCountResources) {
  const auto code = qec::shor();
  const qec::StateContext state(code, LogicalBasis::Zero);
  const auto prep = synthesize_measure_prep(state);
  const decoder::PerfectDecoder decoder(code);
  const auto stats =
      sample_measure_prep(prep, state, decoder, 0.01, 10, 1);
  EXPECT_EQ(stats.ancillas, code.hx().rows());
  std::size_t weight = 0;
  for (std::size_t i = 0; i < code.hx().rows(); ++i) {
    weight += code.hx().row(i).popcount();
  }
  EXPECT_EQ(stats.cnots, weight);
}

}  // namespace
}  // namespace ftsp::core
