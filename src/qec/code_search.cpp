#include "qec/code_search.hpp"

#include <random>
#include <vector>

#include "f2/gauss.hpp"
#include "sat/cnf_builder.hpp"
#include "sat/solver.hpp"

namespace ftsp::qec {

using f2::BitMatrix;
using f2::BitVec;
using sat::CnfBuilder;
using sat::Lit;
using sat::Solver;

std::optional<BitMatrix> find_self_dual_check_matrix(
    const SelfDualSearchOptions& options) {
  const std::size_t r = options.rows;
  const std::size_t n = options.n;
  if (r == 0 || n <= r) {
    return std::nullopt;
  }
  const std::size_t tail = n - r;

  Solver solver;
  solver.set_conflict_budget(options.conflict_budget);
  CnfBuilder cnf(solver);

  // A[i][q]: tail part of the systematic check matrix H = [I_r | A].
  std::vector<std::vector<Lit>> a(r, std::vector<Lit>(tail));
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t q = 0; q < tail; ++q) {
      a[i][q] = cnf.fresh();
    }
  }

  // Self-orthogonality: <H_i, H_j> = delta_ij + <A_i, A_j> = 0, i.e. the
  // tail rows must satisfy <A_i, A_j> = delta_ij.
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = i; j < r; ++j) {
      std::vector<Lit> products;
      products.reserve(tail);
      for (std::size_t q = 0; q < tail; ++q) {
        products.push_back(cnf.and_of({a[i][q], a[j][q]}));
      }
      const Lit parity = cnf.xor_of(products);
      solver.add_unit(i == j ? parity : ~parity);
    }
  }

  // <H_i, v> as a literal, for a constant vector v of length n.
  const auto row_dot = [&](std::size_t i, const BitVec& v) -> Lit {
    std::vector<Lit> terms;
    for (std::size_t q = 0; q < tail; ++q) {
      if (v.get(r + q)) {
        terms.push_back(a[i][q]);
      }
    }
    Lit parity = cnf.xor_of(terms);
    if (v.get(i)) {
      parity = ~parity;  // XOR with the constant identity-part bit.
    }
    return parity;
  };

  // Membership literal: v in rowspan(H). With the systematic form the
  // only candidate combination is fixed by v's identity-part coordinates;
  // v is a member iff every tail coordinate matches.
  const auto member_lit = [&](const BitVec& v) -> Lit {
    std::vector<std::size_t> combo;
    for (std::size_t i = 0; i < r; ++i) {
      if (v.get(i)) {
        combo.push_back(i);
      }
    }
    if (combo.empty()) {
      return cnf.constant(v.none());
    }
    std::vector<Lit> matches;
    matches.reserve(tail);
    for (std::size_t q = 0; q < tail; ++q) {
      std::vector<Lit> terms;
      for (std::size_t i : combo) {
        terms.push_back(a[i][q]);
      }
      Lit parity = cnf.xor_of(terms);
      if (v.get(r + q)) {
        parity = ~parity;  // parity == 1 iff coordinates differ.
      }
      matches.push_back(~parity);
    }
    return cnf.and_of(matches);
  };

  // Logical distance: every nonzero v with wt(v) < min_detect_weight must
  // either have a nonzero syndrome H * v or (if degeneracy is allowed) be
  // a stabilizer itself.
  for (std::size_t w = 1; w < options.min_detect_weight; ++w) {
    for_each_weight(n, w, [&](const BitVec& v) {
      std::vector<Lit> escape;
      escape.reserve(r + 1);
      for (std::size_t i = 0; i < r; ++i) {
        escape.push_back(row_dot(i, v));
      }
      if (options.allow_degenerate) {
        escape.push_back(member_lit(v));
      }
      cnf.add_at_least_one(escape);
      return true;
    });
  }

  // Optional pinned logical: v in ker(H) but outside rowspan(H).
  if (options.forced_logical.has_value()) {
    const BitVec& v = *options.forced_logical;
    for (std::size_t i = 0; i < r; ++i) {
      solver.add_unit(~row_dot(i, v));
    }
    // If v were in rowspan(H), the combination is fixed by v's identity
    // part; forbid the tail from matching on at least one coordinate.
    std::vector<std::size_t> combo;
    for (std::size_t i = 0; i < r; ++i) {
      if (v.get(i)) {
        combo.push_back(i);
      }
    }
    if (!combo.empty()) {
      std::vector<Lit> mismatch;
      for (std::size_t q = 0; q < tail; ++q) {
        std::vector<Lit> terms;
        for (std::size_t i : combo) {
          terms.push_back(a[i][q]);
        }
        Lit parity = cnf.xor_of(terms);
        if (v.get(r + q)) {
          parity = ~parity;
        }
        mismatch.push_back(parity);  // True iff coordinates differ... (below)
      }
      // parity == <sum of combo rows>[q] XOR v[q]; require some q differs.
      cnf.add_at_least_one(mismatch);
    }
  }

  bool satisfiable = false;
  try {
    satisfiable = solver.solve();
  } catch (const Solver::SolveInterrupted&) {
    return std::nullopt;
  }
  if (!satisfiable) {
    return std::nullopt;
  }

  BitMatrix h(r, n);
  for (std::size_t i = 0; i < r; ++i) {
    h.set(i, i);
    for (std::size_t q = 0; q < tail; ++q) {
      if (solver.model_value(a[i][q])) {
        h.set(i, r + q);
      }
    }
  }
  return h;
}

std::optional<CssSearchResult> find_css_check_matrices(
    const CssSearchOptions& options) {
  const std::size_t n = options.n;
  const std::size_t rx = options.rx;
  const std::size_t rz = options.rz;
  if (rx == 0 || rz == 0 || rx + rz >= n) {
    return std::nullopt;
  }

  Solver solver;
  solver.set_conflict_budget(options.conflict_budget);
  CnfBuilder cnf(solver);

  // Every matrix entry is a literal; identity-block entries are constants.
  // Hx = [I_rx | A] (identity at columns 0..rx), Hz = [B | I_rz] (identity
  // at columns n-rz..n).
  std::vector<std::vector<Lit>> hx(rx, std::vector<Lit>(n));
  std::vector<std::vector<Lit>> hz(rz, std::vector<Lit>(n));
  for (std::size_t i = 0; i < rx; ++i) {
    for (std::size_t q = 0; q < n; ++q) {
      hx[i][q] = q < rx ? cnf.constant(q == i) : cnf.fresh();
    }
  }
  const std::size_t z_off = n - rz;
  for (std::size_t j = 0; j < rz; ++j) {
    for (std::size_t q = 0; q < n; ++q) {
      hz[j][q] = q >= z_off ? cnf.constant(q - z_off == j) : cnf.fresh();
    }
  }

  // CSS orthogonality: <Hx_i, Hz_j> = 0.
  for (std::size_t i = 0; i < rx; ++i) {
    for (std::size_t j = 0; j < rz; ++j) {
      std::vector<Lit> products;
      products.reserve(n);
      for (std::size_t q = 0; q < n; ++q) {
        products.push_back(cnf.and_of({hx[i][q], hz[j][q]}));
      }
      solver.add_unit(~cnf.xor_of(products));
    }
  }

  const auto row_dot = [&](const std::vector<Lit>& row,
                           const BitVec& v) -> Lit {
    std::vector<Lit> terms;
    for (std::size_t q : v.ones()) {
      terms.push_back(row[q]);
    }
    return cnf.xor_of(terms);
  };

  // Membership of a constant v in the rowspan of a systematic matrix with
  // identity block at column `off`: the combination is fixed by v's
  // identity-part coordinates; member iff all other columns match.
  const auto member_lit = [&](const std::vector<std::vector<Lit>>& h,
                              std::size_t off, const BitVec& v) -> Lit {
    std::vector<std::size_t> combo;
    for (std::size_t i = 0; i < h.size(); ++i) {
      if (v.get(off + i)) {
        combo.push_back(i);
      }
    }
    if (combo.empty()) {
      return cnf.constant(v.none());
    }
    std::vector<Lit> matches;
    for (std::size_t q = 0; q < n; ++q) {
      if (q >= off && q < off + h.size()) {
        continue;  // Identity block matches by construction of `combo`.
      }
      std::vector<Lit> terms;
      for (std::size_t i : combo) {
        terms.push_back(h[i][q]);
      }
      Lit parity = cnf.xor_of(terms);
      if (v.get(q)) {
        parity = ~parity;
      }
      matches.push_back(~parity);
    }
    return cnf.and_of(matches);
  };

  // Logical distance on both sides.
  for (std::size_t w = 1; w < options.min_distance; ++w) {
    for_each_weight(n, w, [&](const BitVec& v) {
      // X side: v as an X error must be detected by Hz or be an X stabilizer.
      std::vector<Lit> x_escape;
      for (std::size_t j = 0; j < rz; ++j) {
        x_escape.push_back(row_dot(hz[j], v));
      }
      x_escape.push_back(member_lit(hx, 0, v));
      cnf.add_at_least_one(x_escape);
      // Z side, mirrored.
      std::vector<Lit> z_escape;
      for (std::size_t i = 0; i < rx; ++i) {
        z_escape.push_back(row_dot(hx[i], v));
      }
      z_escape.push_back(member_lit(hz, z_off, v));
      cnf.add_at_least_one(z_escape);
      return true;
    });
  }

  bool satisfiable = false;
  try {
    satisfiable = solver.solve();
  } catch (const Solver::SolveInterrupted&) {
    return std::nullopt;
  }
  if (!satisfiable) {
    return std::nullopt;
  }

  CssSearchResult result;
  result.hx = BitMatrix(rx, n);
  result.hz = BitMatrix(rz, n);
  for (std::size_t i = 0; i < rx; ++i) {
    for (std::size_t q = 0; q < n; ++q) {
      result.hx.set(i, q, solver.model_value(hx[i][q]));
    }
  }
  for (std::size_t j = 0; j < rz; ++j) {
    for (std::size_t q = 0; q < n; ++q) {
      result.hz.set(j, q, solver.model_value(hz[j][q]));
    }
  }
  return result;
}

std::optional<CssCode> random_css_search(std::size_t n, std::size_t k,
                                         std::size_t rx,
                                         std::size_t target_distance,
                                         std::uint64_t seed,
                                         std::size_t max_tries) {
  const std::size_t rz = n - k - rx;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> bit(0, 1);

  for (std::size_t attempt = 0; attempt < max_tries; ++attempt) {
    // Random full-rank Hz.
    BitMatrix hz;
    while (hz.rows() < rz) {
      BitVec row(n);
      for (std::size_t q = 0; q < n; ++q) {
        if (bit(rng) != 0) {
          row.set(q);
        }
      }
      if (row.any() && (hz.empty() || !f2::in_row_span(hz, row))) {
        hz.append_row(row);
      }
    }
    // Hx from random independent kernel combinations of Hz.
    const auto kernel = f2::kernel_basis(hz);
    BitMatrix hx;
    std::size_t stuck = 0;
    while (hx.rows() < rx && stuck < 200) {
      BitVec candidate(n);
      for (const auto& kv : kernel) {
        if (bit(rng) != 0) {
          candidate ^= kv;
        }
      }
      if (candidate.any() && (hx.empty() || !f2::in_row_span(hx, candidate))) {
        hx.append_row(candidate);
      } else {
        ++stuck;
      }
    }
    if (hx.rows() != rx) {
      continue;
    }
    try {
      CssCode code("random-search", hx, hz);
      if (code.num_logical() == k && code.distance() == target_distance) {
        return code;
      }
    } catch (const std::exception&) {
      continue;  // Rank/k mismatch; resample.
    }
  }
  return std::nullopt;
}

}  // namespace ftsp::qec
