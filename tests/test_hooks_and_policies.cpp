// Hook-error handling details: flag decisions, deferred-policy structure,
// and the joint (syndrome, flag) patterns produced by Y faults on
// measurement ancillas.
#include <gtest/gtest.h>

#include "core/executor.hpp"
#include "core/ft_check.hpp"
#include "core/metrics.hpp"
#include "core/protocol.hpp"
#include "qec/code_library.hpp"

namespace ftsp::core {
namespace {

using qec::LogicalBasis;
using qec::PauliType;

TEST(Hooks, SteaneWeightThreeVerificationIsUnflagged) {
  // The weight-3 logical-Z verification of the Steane code has only
  // harmless hooks (Example/Table I: a_f = 0).
  const auto protocol =
      synthesize_protocol(qec::steane(), LogicalBasis::Zero);
  ASSERT_TRUE(protocol.layer1.has_value());
  for (const auto& gadget : protocol.layer1->gadgets) {
    EXPECT_FALSE(gadget.flagged);
  }
  EXPECT_TRUE(protocol.layer1->flag_mask.none());
}

TEST(Hooks, FlagDecisionMatchesDangerAnalysis) {
  // Whenever a gadget is unflagged under FlagDangerous policy, all its
  // hook suffixes must be harmless.
  for (const char* name : {"Steane", "Shor", "Surface_3", "Hamming"}) {
    const auto protocol = synthesize_protocol(
        qec::library_code_by_name(name), LogicalBasis::Zero);
    const auto& state = *protocol.state;
    for (const auto* layer : {&protocol.layer1, &protocol.layer2}) {
      if (!layer->has_value()) {
        continue;
      }
      for (const auto& gadget : (*layer)->gadgets) {
        if (gadget.flagged) {
          continue;
        }
        for (const auto& hook :
             circuit::hook_errors(gadget, protocol.num_data_qubits())) {
          EXPECT_FALSE(state.is_dangerous(gadget.stabilizer_type,
                                          hook.data_error))
              << name << ": unflagged gadget has dangerous hook at cut "
              << hook.cut;
        }
      }
    }
  }
}

TEST(Hooks, DeferredPolicyMovesWeightToSecondLayer) {
  // Under DeferToNextLayer the first layer must carry no flags; if the
  // flagged variant had flags, the deferred variant compensates in layer
  // 2 and stays fault-tolerant (checked in test_ft_property too).
  SynthesisOptions flagged;
  flagged.flag_policy = FlagPolicy::FlagDangerous;
  SynthesisOptions deferred;
  deferred.flag_policy = FlagPolicy::DeferToNextLayer;
  for (const char* name : {"Carbon", "[[16,2,4]]"}) {
    const auto code = qec::library_code_by_name(name);
    const auto protocol_deferred =
        synthesize_protocol(code, LogicalBasis::Zero, deferred);
    if (protocol_deferred.layer1.has_value()) {
      EXPECT_TRUE(protocol_deferred.layer1->flag_mask.none()) << name;
    }
    EXPECT_TRUE(check_fault_tolerance(protocol_deferred).ok) << name;
  }
}

TEST(Hooks, YFaultOnAncillaSetsSyndromeAndFlag) {
  // A Y fault on a flagged Z-gadget's ancilla mid-ladder flips both the
  // gadget outcome (X part) and the flag (Z part): the executor must land
  // in a joint (b != 0, f != 0) branch and still terminate corrected.
  for (const char* name :
       {"Shor", "Carbon", "[[16,2,4]]", "Tesseract", "Tetrahedral"}) {
    const auto protocol = synthesize_protocol(
        qec::library_code_by_name(name), LogicalBasis::Zero);
    if (!protocol.layer1.has_value() ||
        protocol.layer1->flag_mask.none()) {
      continue;
    }
    const auto& l1 = *protocol.layer1;
    const circuit::GadgetLayout* flagged = nullptr;
    for (const auto& g : l1.gadgets) {
      if (g.flagged && g.order.size() >= 3) {
        flagged = &g;
        break;
      }
    }
    if (flagged == nullptr) {
      continue;
    }
    // Second data CNOT of the flagged gadget.
    std::size_t data_cnots = 0;
    std::size_t target_gate = SIZE_MAX;
    for (std::size_t g = 0; g < l1.verif.gates().size(); ++g) {
      const auto& gate = l1.verif.gates()[g];
      if (gate.kind != circuit::GateKind::Cnot) {
        continue;
      }
      const bool on_ancilla =
          gate.q0 == flagged->ancilla || gate.q1 == flagged->ancilla;
      const bool with_flag = flagged->flagged &&
                             (gate.q0 == flagged->flag_qubit ||
                              gate.q1 == flagged->flag_qubit);
      if (on_ancilla && !with_flag) {
        if (++data_cnots == 2) {
          target_gate = g;
          break;
        }
      }
    }
    ASSERT_NE(target_gate, SIZE_MAX) << name;
    const auto sites = sim::enumerate_fault_sites(l1.verif);
    const auto& gate = l1.verif.gates()[target_gate];
    int y_op = -1;
    for (std::size_t o = 0; o < sites[target_gate].ops.size(); ++o) {
      const auto& op = sites[target_gate].ops[o];
      if (op.num_terms == 1 && op.terms[0].qubit == flagged->ancilla &&
          op.terms[0].x && op.terms[0].z) {
        y_op = static_cast<int>(o);
        break;
      }
    }
    ASSERT_GE(y_op, 0) << name;
    (void)gate;

    const Executor executor(protocol);
    bool injected = false;
    const auto result = executor.run([&](const SiteRef& ref) -> int {
      if (!injected && ref.segment == &l1.verif &&
          ref.gate_index == target_gate) {
        injected = true;
        return y_op;
      }
      return -1;
    });
    EXPECT_TRUE(result.hook_terminated) << name;
    EXPECT_LE(protocol.state->reduced_weight(PauliType::X,
                                             result.data_error.x),
              1u)
        << name;
    EXPECT_LE(protocol.state->reduced_weight(PauliType::Z,
                                             result.data_error.z),
              1u)
        << name;
    return;
  }
  GTEST_SKIP() << "no flagged first layer in the candidate codes";
}

TEST(Hooks, HookBranchesAreCheapAcrossTheLibrary) {
  // Section V observes that (for the paper's circuits) flag corrections
  // need no additional measurements. That is a property of specific
  // circuits, not of the method; for our circuits we check the weaker,
  // universally-true statements: hook branches exist, many are
  // measurement-free, and none needs more measurements than the layer
  // had verification ancillas.
  std::size_t hook_branches = 0;
  std::size_t measurement_free = 0;
  for (const auto& code : qec::all_library_codes()) {
    const auto protocol = synthesize_protocol(code, LogicalBasis::Zero);
    for (const auto* layer : {&protocol.layer1, &protocol.layer2}) {
      if (!layer->has_value()) {
        continue;
      }
      for (const auto& [key, branch] : (*layer)->branches) {
        (void)key;
        if (!branch.is_hook_branch) {
          continue;
        }
        ++hook_branches;
        measurement_free += branch.plan.measurements.empty() ? 1 : 0;
        EXPECT_LE(branch.plan.measurements.size(),
                  (*layer)->gadgets.size() + 1)
            << code.name();
      }
    }
  }
  EXPECT_GT(hook_branches, 0u);
  EXPECT_GT(measurement_free, 0u);
}

}  // namespace
}  // namespace ftsp::core
