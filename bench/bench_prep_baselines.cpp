// Ablation F: the three preparation strategies side by side —
//   (a) one-round measurement-based preparation (the costly textbook
//       route the paper's introduction contrasts with; O(p) logical),
//   (b) non-deterministic verified preparation (repeat-until-success),
//   (c) this paper's deterministic verified preparation (O(p^2), one
//       attempt).
// Reports resources (ancillas, CNOTs) and logical error rates.
#include <cstdio>

#include "core/executor.hpp"
#include "core/measure_prep.hpp"
#include "core/metrics.hpp"
#include "core/nondet.hpp"
#include "core/protocol.hpp"
#include "core/samplers.hpp"
#include "qec/code_library.hpp"

namespace {
using namespace ftsp;
constexpr std::size_t kShots = 30000;
}  // namespace

int main() {
  std::printf("Preparation strategy comparison (|0>_L, E1_1 noise)\n\n");
  std::printf("%-12s %-8s %-24s %-12s %-10s\n", "code", "p", "scheme",
              "pL", "attempts");

  for (const char* name : {"Steane", "Tetrahedral"}) {
    const auto code = qec::library_code_by_name(name);
    const qec::StateContext state(code, qec::LogicalBasis::Zero);
    const auto measure_prep = core::synthesize_measure_prep(state);
    const auto protocol =
        core::synthesize_protocol(code, qec::LogicalBasis::Zero);
    const core::Executor executor(protocol);
    const decoder::PerfectDecoder decoder(code);
    const auto metrics = core::compute_metrics(protocol);

    for (const double p : {0.01, 0.003, 0.001}) {
      const auto mb = core::sample_measure_prep(measure_prep, state,
                                                decoder, p, kShots, 31);
      std::printf("%-12s %-8.3g %-24s %-12.3e %-10s\n", name, p,
                  "measurement-based(1rd)", mb.logical_error_rate, "1");

      const auto nd = core::sample_nondet(protocol, decoder, p, kShots, 32);
      std::printf("%-12s %-8.3g %-24s %-12.3e %-10.2f\n", name, p,
                  "nondet(verified)", nd.logical_error_rate,
                  nd.expected_attempts);

      const auto batch =
          core::sample_protocol_batch(executor, decoder, p, kShots, 33);
      const auto det = core::estimate_logical_rate({batch}, p);
      std::printf("%-12s %-8.3g %-24s %-12.3e %-10s\n", name, p,
                  "deterministic(paper)", det.mean, "1");
    }
    std::printf("  resources: measurement-based %zu anc / %zu CNOTs; "
                "deterministic verification %zu anc / %zu CNOTs "
                "(+%zu prep CNOTs)\n\n",
                measure_prep.gadgets.size(),
                [&] {
                  std::size_t w = 0;
                  for (const auto& g : measure_prep.gadgets) {
                    w += g.support.popcount();
                  }
                  return w;
                }(),
                metrics.total_verif_ancillas, metrics.total_verif_cnots,
                metrics.prep_cnots);
  }
  std::printf("Expected shape: measurement-based ~ O(p), both verified "
              "schemes ~ O(p^2); the deterministic one without retries.\n");
  return 0;
}
