#include "decoder/lookup_decoder.hpp"

#include <cassert>
#include <stdexcept>

namespace ftsp::decoder {

using f2::BitVec;
using qec::PauliType;

std::size_t LookupDecoder::pack(const BitVec& syndrome) {
  std::size_t packed = 0;
  for (std::size_t i = 0; i < syndrome.size(); ++i) {
    if (syndrome.get(i)) {
      packed |= std::size_t{1} << i;
    }
  }
  return packed;
}

LookupDecoder::LookupDecoder(const qec::CssCode& code, PauliType error_type)
    : code_(&code), type_(error_type) {
  const auto& checks = code.check_matrix(other(error_type));
  syndrome_bits_ = checks.rows();
  if (syndrome_bits_ > 20) {
    throw std::length_error("LookupDecoder: syndrome space too large");
  }
  const std::size_t n = code.num_qubits();
  const std::size_t count = std::size_t{1} << syndrome_bits_;
  table_.assign(count, BitVec());
  std::size_t filled = 0;
  for (std::size_t w = 0; w <= n && filled < count; ++w) {
    qec::for_each_weight(n, w, [&](const BitVec& e) {
      const std::size_t s = pack(checks.multiply(e));
      if (table_[s].empty()) {
        table_[s] = e;
        ++filled;
      }
      return filled < count;
    });
  }
  assert(filled == count);
}

LookupDecoder::LookupDecoder(const qec::CssCode& code, PauliType error_type,
                             std::vector<BitVec> table)
    : code_(&code), type_(error_type), table_(std::move(table)) {
  const auto& checks = code.check_matrix(other(error_type));
  syndrome_bits_ = checks.rows();
  if (table_.size() != (std::size_t{1} << syndrome_bits_)) {
    throw std::invalid_argument("LookupDecoder: table size mismatch");
  }
  const std::size_t n = code.num_qubits();
  for (std::size_t s = 0; s < table_.size(); ++s) {
    if (table_[s].size() != n || pack(checks.multiply(table_[s])) != s) {
      throw std::invalid_argument(
          "LookupDecoder: table entry inconsistent with code");
    }
  }
}

const BitVec& LookupDecoder::decode(const BitVec& syndrome) const {
  if (syndrome.size() != syndrome_bits_) {
    throw std::invalid_argument("LookupDecoder::decode: syndrome size");
  }
  return table_[pack(syndrome)];
}

BitVec LookupDecoder::residual(const BitVec& error) const {
  const auto syndrome = code_->syndrome(type_, error);
  return error ^ decode(syndrome);
}

LogicalOutcome PerfectDecoder::decode(const qec::Pauli& error) const {
  LogicalOutcome outcome;
  const BitVec rx = x_decoder_.residual(error.x);
  const BitVec rz = z_decoder_.residual(error.z);
  for (std::size_t i = 0; i < code_->num_logical(); ++i) {
    outcome.x_flip = outcome.x_flip || rx.dot(code_->logical_z().row(i));
    outcome.z_flip = outcome.z_flip || rz.dot(code_->logical_x().row(i));
  }
  return outcome;
}

}  // namespace ftsp::decoder
