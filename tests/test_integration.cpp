// End-to-end integration: synthesis -> exhaustive FT check -> noisy
// simulation -> decoding, mirroring the paper's full evaluation pipeline
// on a representative subset of codes.
#include <gtest/gtest.h>

#include "core/executor.hpp"
#include "core/ft_check.hpp"
#include "core/global_opt.hpp"
#include "core/metrics.hpp"
#include "core/nondet.hpp"
#include "core/protocol.hpp"
#include "core/samplers.hpp"
#include "qec/code_library.hpp"
#include "sim/tableau.hpp"

namespace ftsp::core {
namespace {

using qec::LogicalBasis;

TEST(Integration, SteaneFullPipeline) {
  const auto code = qec::steane();
  const auto protocol = synthesize_protocol(code, LogicalBasis::Zero);

  // 1. The protocol is exhaustively fault-tolerant.
  ASSERT_TRUE(check_fault_tolerance(protocol).ok);

  // 2. The preparation makes |0>_L on the tableau simulator.
  sim::Tableau tableau(protocol.prep.num_qubits());
  std::mt19937_64 rng(1);
  tableau.run(protocol.prep, rng);
  qec::Pauli zl(code.num_qubits());
  zl.z = code.logical_z().row(0);
  EXPECT_TRUE(tableau.stabilizes(zl));

  // 3. Noisy logical error rates scale quadratically and sit well below
  //    the physical rate at p = 1e-2.
  const Executor executor(protocol);
  const decoder::PerfectDecoder decoder(code);
  const std::vector<TrajectoryBatch> batches = {
      sample_protocol_batch(executor, decoder, 0.1, 8000, 1001),
      sample_protocol_batch(executor, decoder, 0.02, 8000, 1002)};
  const auto at_1em2 = estimate_logical_rate(batches, 1e-2);
  EXPECT_GT(at_1em2.mean, 0.0);
  EXPECT_LT(at_1em2.mean, 1e-2);

  const auto at_1em3 = estimate_logical_rate(batches, 1e-3);
  // Quadratic scaling: two decades below at one decade smaller p, within
  // generous statistical slack.
  const double ratio = at_1em3.mean / at_1em2.mean;
  EXPECT_LT(ratio, 0.15);
}

TEST(Integration, DeterministicBeatsPostSelectionInAttempts) {
  const auto protocol =
      synthesize_protocol(qec::steane(), LogicalBasis::Zero);
  const decoder::PerfectDecoder decoder(*protocol.code);
  const auto stats = sample_nondet(protocol, decoder, 0.05, 20000, 77);
  // The non-deterministic scheme needs > 1 attempt on average; the
  // deterministic protocol needs exactly 1 by construction.
  EXPECT_GT(stats.expected_attempts, 1.0);
}

TEST(Integration, TwoLayerCodeFullPipeline) {
  // A d = 4 code with both layers exercises flags, hook branches and the
  // second verification round.
  const auto code = qec::carbon();
  const auto protocol = synthesize_protocol(code, LogicalBasis::Zero);
  ASSERT_TRUE(protocol.layer1.has_value());
  ASSERT_TRUE(protocol.layer2.has_value());
  ASSERT_TRUE(check_fault_tolerance(protocol).ok);

  // At p = 1e-3 the protocol (~200 locations) is firmly in the
  // single-fault regime, so p_L must sit well below p.
  const Executor executor(protocol);
  const decoder::PerfectDecoder decoder(code);
  const std::vector<TrajectoryBatch> batches = {
      sample_protocol_batch(executor, decoder, 0.05, 6000, 2024),
      sample_protocol_batch(executor, decoder, 0.01, 6000, 2025)};
  const auto estimate = estimate_logical_rate(batches, 1e-3);
  EXPECT_LT(estimate.mean, 1e-3);
}

TEST(Integration, MetricsRowsForAllCodesPrintable) {
  // Smoke over the full library with the cheap heuristic settings: the
  // whole Table-I pipeline must run end to end.
  for (const auto& code : qec::all_library_codes()) {
    const auto protocol = synthesize_protocol(code, LogicalBasis::Zero);
    const auto metrics = compute_metrics(protocol);
    const auto row = format_metrics_row(code.name(), metrics);
    EXPECT_FALSE(row.empty());
    EXPECT_TRUE(protocol.layer1.has_value() ||
                protocol.layer2.has_value())
        << code.name() << " needs no verification at all?";
  }
}

TEST(Integration, GlobalOptimizationEndToEnd) {
  const auto result = globally_optimize(qec::shor(), LogicalBasis::Zero);
  ASSERT_TRUE(check_fault_tolerance(result.best).ok);
  const Executor executor(result.best);
  const decoder::PerfectDecoder decoder(*result.best.code);
  const std::vector<TrajectoryBatch> batches = {
      sample_protocol_batch(executor, decoder, 0.05, 6000, 555),
      sample_protocol_batch(executor, decoder, 0.01, 6000, 556)};
  EXPECT_LT(estimate_logical_rate(batches, 1e-3).mean, 1e-3);
}

}  // namespace
}  // namespace ftsp::core
