#include "sim/pauli_frame.hpp"

#include <cassert>

namespace ftsp::sim {

using circuit::Gate;
using circuit::GateKind;

void apply_gate(PauliFrame& frame, const Gate& gate) {
  auto& x = frame.error.x;
  auto& z = frame.error.z;
  switch (gate.kind) {
    case GateKind::Cnot:
      // X on the control copies to the target; Z on the target copies to
      // the control.
      if (x.get(gate.q0)) {
        x.flip(gate.q1);
      }
      if (z.get(gate.q1)) {
        z.flip(gate.q0);
      }
      break;
    case GateKind::H:
      // H exchanges X and Z.
      {
        const bool had_x = x.get(gate.q0);
        x.set(gate.q0, z.get(gate.q0));
        z.set(gate.q0, had_x);
      }
      break;
    case GateKind::PrepZ:
    case GateKind::PrepX:
      x.set(gate.q0, false);
      z.set(gate.q0, false);
      break;
    case GateKind::MeasZ:
      assert(gate.cbit >= 0);
      frame.outcomes[static_cast<std::size_t>(gate.cbit)] =
          frame.outcomes[static_cast<std::size_t>(gate.cbit)] ^
          x.get(gate.q0);
      break;
    case GateKind::MeasX:
      assert(gate.cbit >= 0);
      frame.outcomes[static_cast<std::size_t>(gate.cbit)] =
          frame.outcomes[static_cast<std::size_t>(gate.cbit)] ^
          z.get(gate.q0);
      break;
  }
}

void apply_circuit(PauliFrame& frame, const circuit::Circuit& c) {
  for (const Gate& g : c.gates()) {
    apply_gate(frame, g);
  }
}

}  // namespace ftsp::sim
