#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace ftsp::sat {

/// A DRAT refutation snapshot, taken at the moment a `solve()` call
/// concluded UNSAT while proof logging was enabled.
///
/// `premise` is the formula the refutation is stated against: every
/// clause handed to `add_clause` while logging was on, verbatim (clauses
/// added before logging was enabled are represented by the solver's
/// simplified database at enable time, which is a consequence of them).
/// `assumptions` are the assumption literals of the refuted query; each
/// acts as an additional premise unit clause, so the checked statement is
/// "premise AND assumptions is unsatisfiable" — exactly the claim an
/// assumption-based bound sweep makes. `drat` is the proof text, one
/// clause per line in DIMACS numbering (var + 1, negative = negated):
/// additions as "l1 .. lk 0", deletions as "d l1 .. lk 0", terminated by
/// the empty clause "0".
struct UnsatProof {
  std::vector<std::vector<Lit>> premise;
  std::vector<Lit> assumptions;
  std::string drat;
};

/// Cumulative search statistics. Counters only ever increase between
/// `reset_stats()` calls; per-sweep deltas are obtained by subtraction.
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t removed_clauses = 0;

  SolverStats& operator+=(const SolverStats& o);
  SolverStats& operator-=(const SolverStats& o);
  friend SolverStats operator+(SolverStats a, const SolverStats& b) {
    return a += b;
  }
  friend SolverStats operator-(SolverStats a, const SolverStats& b) {
    return a -= b;
  }
};

/// One step of an incremental bound sweep: the queried bound, the verdict,
/// and the solver-statistics delta attributable to just this step.
struct SweepStep {
  std::size_t bound = 0;
  bool sat = false;
  SolverStats delta;
};

/// Telemetry sink for assumption-based bound sweeps. Synthesis routines
/// append one `SweepStep` per `solve(assumptions)` call when a telemetry
/// pointer is supplied in their options.
struct SweepTelemetry {
  std::vector<SweepStep> steps;

  std::uint64_t total_conflicts() const {
    std::uint64_t total = 0;
    for (const auto& s : steps) {
      total += s.delta.conflicts;
    }
    return total;
  }
};

/// Abstract SAT backend: the narrow surface the synthesis layer programs
/// against. Implemented by the sequential CDCL `Solver` and by the
/// portfolio/cube `ParallelSolver`, so every CNF built through
/// `CnfBuilder` can be decided by either engine.
class SolverBase {
 public:
  virtual ~SolverBase() = default;

  /// Creates a fresh variable and returns it.
  virtual Var new_var() = 0;
  virtual int num_vars() const = 0;

  /// Adds a clause. Returns false if the formula is now trivially
  /// unsatisfiable (adding to an UNSAT solver is a no-op).
  virtual bool add_clause(std::span<const Lit> lits) = 0;
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
  }
  bool add_unit(Lit a) { return add_clause({a}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  /// Decides satisfiability under the given assumptions.
  virtual bool solve(std::span<const Lit> assumptions) = 0;
  bool solve() { return solve(std::span<const Lit>{}); }
  bool solve(std::initializer_list<Lit> assumptions) {
    return solve(std::span<const Lit>(assumptions.begin(), assumptions.size()));
  }

  /// Model access; only valid after `solve()` returned true.
  virtual bool model_value(Var v) const = 0;
  bool model_value(Lit l) const { return model_value(l.var()) != l.sign(); }

  /// False once the clause database is known unsatisfiable at level 0.
  virtual bool okay() const = 0;

  /// Optional hard limit on conflicts per `solve()` call; 0 = unlimited.
  /// When the budget is exhausted `solve()` throws `SolveInterrupted`.
  virtual void set_conflict_budget(std::uint64_t budget) = 0;

  virtual SolverStats stats() const = 0;

  /// Zeroes the statistics counters so subsequent queries report
  /// per-sweep deltas instead of lifetime totals.
  virtual void reset_stats() = 0;

  /// Snapshot of the problem clauses (including level-0 units), suitable
  /// for DIMACS export. Learned clauses are excluded.
  virtual std::vector<std::vector<Lit>> problem_clauses() const = 0;

  /// Enables DRAT proof logging. Off by default; when off the solver is
  /// bit-identical to a solver without the feature. Enable before adding
  /// clauses for a verbatim premise (enabling later summarizes earlier
  /// clauses by the current simplified database). Backends that cannot
  /// produce proofs ignore the request.
  virtual void set_proof_logging(bool enable) { (void)enable; }
  virtual bool proof_logging() const { return false; }

  /// The refutation of the most recent `solve()` that returned false,
  /// or nullopt when logging is off, no UNSAT verdict has been produced
  /// since logging was enabled, or the backend cannot attribute a single
  /// refutation (cube-and-conquer mode).
  virtual std::optional<UnsatProof> last_unsat_proof() const {
    return std::nullopt;
  }

  struct SolveInterrupted {};
};

inline SolverStats& SolverStats::operator+=(const SolverStats& o) {
  decisions += o.decisions;
  propagations += o.propagations;
  conflicts += o.conflicts;
  restarts += o.restarts;
  learned_clauses += o.learned_clauses;
  removed_clauses += o.removed_clauses;
  return *this;
}

inline SolverStats& SolverStats::operator-=(const SolverStats& o) {
  decisions -= o.decisions;
  propagations -= o.propagations;
  conflicts -= o.conflicts;
  restarts -= o.restarts;
  learned_clauses -= o.learned_clauses;
  removed_clauses -= o.removed_clauses;
  return *this;
}

}  // namespace ftsp::sat
