namespace ftsp::compile {
struct Op { const char* name; int id; };
constexpr Op kOps = {
    {"codes", 1},
    {"renamed", 2},
};
}  // namespace ftsp::compile
