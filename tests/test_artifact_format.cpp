// Robustness of the artifact container format: truncation, CRC damage,
// version bumps and unknown sections must fail loud (or skip cleanly),
// never produce garbage objects.
#include "compile/format.hpp"

#include <gtest/gtest.h>

#include "compile/artifact.hpp"
#include "core/protocol.hpp"
#include "core/serialize.hpp"
#include "qec/code_library.hpp"
#include "util/binio.hpp"

namespace ftsp::compile {
namespace {

std::vector<Section> demo_sections() {
  return {{1, "hello"}, {2, std::string("\x00\x01\x02", 3)}, {7, ""}};
}

TEST(Container, RoundTrips) {
  const auto packed = pack_container(demo_sections());
  const auto sections = unpack_container(packed);
  ASSERT_EQ(sections.size(), 3u);
  EXPECT_EQ(sections[0].id, 1u);
  EXPECT_EQ(sections[0].bytes, "hello");
  EXPECT_EQ(sections[1].bytes.size(), 3u);
  EXPECT_EQ(sections[2].bytes, "");
  EXPECT_EQ(find_section(sections, SectionId::Meta), "hello");
}

TEST(Container, EveryTruncationFailsLoud) {
  const auto packed = pack_container(demo_sections());
  // Chop at every length short of the full file: header cuts, table
  // cuts, payload cuts — all must throw, none may crash or succeed.
  for (std::size_t length = 0; length < packed.size(); ++length) {
    EXPECT_THROW(unpack_container(std::string_view(packed).substr(0, length)),
                 ArtifactFormatError)
        << "accepted a file truncated to " << length << " bytes";
  }
}

TEST(Container, BadMagicRejected) {
  auto packed = pack_container(demo_sections());
  packed[0] = 'X';
  EXPECT_THROW(unpack_container(packed), ArtifactFormatError);
}

TEST(Container, FutureVersionRejectedWithMessage) {
  auto packed = pack_container(demo_sections());
  packed[8] = 99;  // Container version low byte.
  try {
    unpack_container(packed);
    FAIL() << "future version accepted";
  } catch (const ArtifactFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("version 99"), std::string::npos);
  }
}

TEST(Container, EveryPayloadByteIsCrcProtected) {
  const auto reference = pack_container(demo_sections());
  // Flip every bit of the payload region (past header + table); each
  // flip must be caught by some section's CRC.
  const std::size_t payload_start = reference.size() - 8;  // "hello" + 3.
  for (std::size_t i = payload_start; i < reference.size(); ++i) {
    auto damaged = reference;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x40);
    EXPECT_THROW(unpack_container(damaged), ArtifactFormatError)
        << "undetected corruption at byte " << i;
  }
}

TEST(Container, OutOfBoundsSectionRejected) {
  auto packed = pack_container(demo_sections());
  // Section 0's offset field lives at header(16) + 8; point it past EOF.
  packed[16 + 8] = static_cast<char>(0xFF);
  packed[16 + 9] = static_cast<char>(0xFF);
  EXPECT_THROW(unpack_container(packed), ArtifactFormatError);
}

TEST(Container, MissingSectionReported) {
  const auto sections = unpack_container(pack_container(demo_sections()));
  EXPECT_THROW(find_section(sections, SectionId::Provenance),
               ArtifactFormatError);
}

TEST(Container, UnreadableFileThrows) {
  EXPECT_THROW(read_artifact_file("/nonexistent/dir/x.ftsa"),
               ArtifactFormatError);
}

// Full-artifact robustness: the same guarantees must hold through
// `decode_artifact`, which layers the section decoders on top.
class ArtifactBytes : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const ProtocolCompiler compiler;
    artifact_ = new ProtocolArtifact(compiler.compile(qec::steane()));
    bytes_ = new std::string(encode_artifact(*artifact_));
  }
  static void TearDownTestSuite() {
    delete artifact_;
    delete bytes_;
    artifact_ = nullptr;
    bytes_ = nullptr;
  }

  static ProtocolArtifact* artifact_;
  static std::string* bytes_;
};

ProtocolArtifact* ArtifactBytes::artifact_ = nullptr;
std::string* ArtifactBytes::bytes_ = nullptr;

TEST_F(ArtifactBytes, LegacyProvenancePayloadStillDecodes) {
  // Pre-coupling writers ended the provenance payload at compiled_at;
  // the trailing prep_fallback byte is optional. Strip it and the
  // artifact must decode with prep_fallback == false.
  auto sections = unpack_container(*bytes_);
  bool stripped = false;
  for (auto& section : sections) {
    if (section.id == static_cast<std::uint32_t>(SectionId::Provenance)) {
      ASSERT_FALSE(section.bytes.empty());
      section.bytes.pop_back();
      stripped = true;
    }
  }
  ASSERT_TRUE(stripped);
  const auto artifact = decode_artifact(pack_container(sections));
  EXPECT_FALSE(artifact.provenance.prep_fallback);
  EXPECT_EQ(artifact.provenance.prep_cnots,
            artifact_->provenance.prep_cnots);
}

TEST_F(ArtifactBytes, LegacyArtifactWithoutCouplingSectionIsAllToAll) {
  // An all-to-all compile writes no Coupling section — exactly the
  // shape of every pre-coupling artifact — and decodes to a null map.
  const auto sections = unpack_container(*bytes_);
  for (const auto& section : sections) {
    EXPECT_NE(section.id, static_cast<std::uint32_t>(SectionId::Coupling));
  }
  const auto artifact = decode_artifact(*bytes_);
  EXPECT_EQ(artifact.coupling, nullptr);
  EXPECT_EQ(artifact.gadget_reach, 0u);
}

TEST_F(ArtifactBytes, CorruptCouplingSectionFailsLoud) {
  // A Coupling section whose edge list points out of range passes the
  // CRC (we recompute it) but must still be rejected semantically.
  auto sections = unpack_container(*bytes_);
  util::ByteWriter bogus;
  bogus.str("evil");
  bogus.u32(3);   // sites
  bogus.u32(0);   // gadget reach
  bogus.u32(1);   // edge count
  bogus.u32(0);
  bogus.u32(9);   // out of range for 3 sites
  sections.push_back(
      {static_cast<std::uint32_t>(SectionId::Coupling), bogus.take()});
  EXPECT_THROW(decode_artifact(pack_container(sections)),
               ArtifactFormatError);

  // An absurd site count must be rejected *before* the adjacency
  // allocation, not via bad_alloc.
  auto sections2 = unpack_container(*bytes_);
  util::ByteWriter huge;
  huge.str("evil");
  huge.u32(0xFFFFFFFFu);  // sites
  huge.u32(0);            // gadget reach
  huge.u32(0);            // edge count
  sections2.push_back(
      {static_cast<std::uint32_t>(SectionId::Coupling), huge.take()});
  EXPECT_THROW(decode_artifact(pack_container(sections2)),
               ArtifactFormatError);
}

TEST_F(ArtifactBytes, UnknownSectionsAreSkippedCleanly) {
  // A future writer appends a section this build has never heard of —
  // the file must still load, byte-identically to the known sections.
  auto sections = unpack_container(*bytes_);
  sections.push_back({0xBEEF, "future payload this build cannot parse"});
  const auto artifact = decode_artifact(pack_container(sections));
  EXPECT_EQ(artifact.key, artifact_->key);
  EXPECT_EQ(artifact.protocol.code->name(), "Steane");
  EXPECT_EQ(artifact.x_decoder_table, artifact_->x_decoder_table);
}

TEST_F(ArtifactBytes, TruncationNeverYieldsAnArtifact) {
  for (std::size_t length = 0; length < bytes_->size();
       length += 7) {  // Stride keeps the quadratic scan fast.
    EXPECT_THROW(
        decode_artifact(std::string_view(*bytes_).substr(0, length)),
        ArtifactFormatError)
        << "decoded an artifact truncated to " << length << " bytes";
  }
}

TEST_F(ArtifactBytes, CorruptedDecoderTableRejected) {
  // Damage a decoder-table entry *and* fix up the section CRC, so only
  // the semantic validation (table vs code consistency) can catch it.
  auto sections = unpack_container(*bytes_);
  for (auto& section : sections) {
    if (section.id == static_cast<std::uint32_t>(SectionId::DecoderX)) {
      // Flip the last payload bit of the last table entry.
      section.bytes.back() = static_cast<char>(section.bytes.back() ^ 0x01);
    }
  }
  const auto repacked = pack_container(sections);
  // Tables are stored raw, so the flip must surface at the semantic
  // validation layer: decoder rehydration checks every entry's syndrome.
  bool threw = false;
  try {
    const auto artifact = decode_artifact(repacked);
    make_artifact_decoder(artifact);
  } catch (const std::exception&) {
    threw = true;
  }
  EXPECT_TRUE(threw) << "corrupted decoder table silently accepted";
}

TEST_F(ArtifactBytes, HugeCountsRejectedBeforeAllocating) {
  // A tiny section claiming 2^32-1 elements must fail as a format error
  // up front, not attempt a multi-GB reserve first.
  for (const SectionId target : {SectionId::Layout, SectionId::DecoderX}) {
    auto sections = unpack_container(*bytes_);
    for (auto& section : sections) {
      if (section.id == static_cast<std::uint32_t>(target)) {
        section.bytes.assign(section.bytes.size(), '\xFF');
      }
    }
    EXPECT_THROW(decode_artifact(pack_container(sections)),
                 ArtifactFormatError);
  }
}

TEST_F(ArtifactBytes, GarbageNeverDecodes) {
  EXPECT_THROW(decode_artifact("not an artifact at all"),
               ArtifactFormatError);
  EXPECT_THROW(core::load_protocol_binary("garbage"), std::exception);
}

}  // namespace
}  // namespace ftsp::compile
