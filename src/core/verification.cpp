#include "core/verification.hpp"

#include <algorithm>
#include <set>

#include "core/stabilizer_select.hpp"
#include "sat/cnf_builder.hpp"
#include "sat/solver.hpp"

namespace ftsp::core {

using f2::BitMatrix;
using f2::BitVec;
using sat::CnfBuilder;
using sat::Solver;

std::size_t VerificationSet::total_weight() const {
  std::size_t w = 0;
  for (const auto& s : stabilizers) {
    w += s.popcount();
  }
  return w;
}

namespace {

/// One decision query: is there a set of `u` stabilizers with total weight
/// <= `v` detecting all errors? Returns the set if so.
std::optional<VerificationSet> query(const BitMatrix& generators,
                                     const std::vector<BitVec>& errors,
                                     std::size_t u, std::size_t v,
                                     std::uint64_t budget) {
  Solver solver;
  solver.set_conflict_budget(budget);
  CnfBuilder cnf(solver);
  StabilizerSelection selection(cnf, generators, u);
  selection.require_nonzero();
  if (u > 1) {
    selection.break_symmetry();
  }
  for (const BitVec& e : errors) {
    std::vector<sat::Lit> detecting;
    detecting.reserve(u);
    for (std::size_t i = 0; i < u; ++i) {
      detecting.push_back(selection.syndrome_bit(i, e));
    }
    cnf.add_at_least_one(detecting);
  }
  selection.bound_total_weight(v);

  if (!solver.solve()) {
    return std::nullopt;
  }
  VerificationSet set;
  for (std::size_t i = 0; i < u; ++i) {
    set.stabilizers.push_back(selection.extract(solver, i));
  }
  return set;
}

/// Finds the optimal (u, v): smallest u admitting any solution, then
/// smallest v for that u (binary search).
std::optional<std::pair<std::size_t, std::size_t>> find_optimum(
    const BitMatrix& generators, const std::vector<BitVec>& errors,
    const VerificationSynthOptions& options) {
  const std::size_t n = generators.cols();
  for (std::size_t u = 1; u <= options.max_measurements; ++u) {
    if (!query(generators, errors, u, u * n, options.conflict_budget)) {
      continue;
    }
    std::size_t lo = u;        // Each stabilizer has weight >= 1.
    std::size_t hi = u * n;    // Known satisfiable.
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (query(generators, errors, u, mid, options.conflict_budget)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return std::make_pair(u, lo);
  }
  return std::nullopt;
}

}  // namespace

std::optional<VerificationSet> synthesize_verification(
    const BitMatrix& candidate_generators,
    const std::vector<BitVec>& dangerous_errors,
    const VerificationSynthOptions& options) {
  if (dangerous_errors.empty()) {
    return VerificationSet{};
  }
  const auto optimum =
      find_optimum(candidate_generators, dangerous_errors, options);
  if (!optimum.has_value()) {
    return std::nullopt;
  }
  return query(candidate_generators, dangerous_errors, optimum->first,
               optimum->second, options.conflict_budget);
}

std::vector<VerificationSet> enumerate_optimal_verifications(
    const BitMatrix& candidate_generators,
    const std::vector<BitVec>& dangerous_errors,
    const VerificationSynthOptions& options) {
  if (dangerous_errors.empty()) {
    return {VerificationSet{}};
  }
  const auto optimum =
      find_optimum(candidate_generators, dangerous_errors, options);
  if (!optimum.has_value()) {
    return {};
  }
  const auto [u, v] = *optimum;

  // Re-encode once and enumerate models, blocking each found selection.
  Solver solver;
  solver.set_conflict_budget(options.conflict_budget);
  CnfBuilder cnf(solver);
  StabilizerSelection selection(cnf, candidate_generators, u);
  selection.require_nonzero();
  if (u > 1) {
    selection.break_symmetry();
  }
  for (const BitVec& e : dangerous_errors) {
    std::vector<sat::Lit> detecting;
    for (std::size_t i = 0; i < u; ++i) {
      detecting.push_back(selection.syndrome_bit(i, e));
    }
    cnf.add_at_least_one(detecting);
  }
  selection.bound_total_weight(v);

  std::vector<VerificationSet> results;
  std::set<std::vector<std::string>> seen;
  while (results.size() < options.enumerate_limit && solver.okay() &&
         solver.solve()) {
    VerificationSet set;
    for (std::size_t i = 0; i < u; ++i) {
      set.stabilizers.push_back(selection.extract(solver, i));
    }
    // Canonicalize as an unordered multiset of supports.
    std::vector<std::string> key;
    for (const auto& s : set.stabilizers) {
      key.push_back(s.to_string());
    }
    std::sort(key.begin(), key.end());
    if (seen.insert(std::move(key)).second) {
      results.push_back(std::move(set));
    }
    selection.block_model(solver);
  }
  return results;
}

}  // namespace ftsp::core
