#include "circuit/circuit.hpp"

#include <gtest/gtest.h>

namespace ftsp::circuit {
namespace {

TEST(Circuit, StartsEmpty) {
  const Circuit c(3);
  EXPECT_EQ(c.num_qubits(), 3u);
  EXPECT_EQ(c.num_cbits(), 0u);
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.depth(), 0u);
}

TEST(Circuit, AppendGates) {
  Circuit c(3);
  c.prep_z(0);
  c.prep_x(1);
  c.h(2);
  c.cnot(1, 0);
  EXPECT_EQ(c.gate_count(), 4u);
  EXPECT_EQ(c.cnot_count(), 1u);
  EXPECT_EQ(c.gates()[3].kind, GateKind::Cnot);
  EXPECT_EQ(c.gates()[3].q0, 1u);
  EXPECT_EQ(c.gates()[3].q1, 0u);
}

TEST(Circuit, MeasurementsAllocateClassicalBits) {
  Circuit c(2);
  const int b0 = c.measure_z(0);
  const int b1 = c.measure_x(1);
  EXPECT_EQ(b0, 0);
  EXPECT_EQ(b1, 1);
  EXPECT_EQ(c.num_cbits(), 2u);
  EXPECT_TRUE(c.gates()[0].is_measurement());
}

TEST(Circuit, QubitRangeChecked) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), std::out_of_range);
  EXPECT_THROW(c.cnot(0, 5), std::out_of_range);
}

TEST(Circuit, CnotRejectsSameQubit) {
  Circuit c(2);
  EXPECT_THROW(c.cnot(1, 1), std::invalid_argument);
}

TEST(Circuit, AddQubitExtendsRegister) {
  Circuit c(2);
  const std::size_t anc = c.add_qubit();
  EXPECT_EQ(anc, 2u);
  EXPECT_EQ(c.num_qubits(), 3u);
  c.cnot(0, anc);  // Now valid.
  EXPECT_EQ(c.cnot_count(), 1u);
}

TEST(Circuit, AppendRenumbersClassicalBits) {
  Circuit a(2);
  a.measure_z(0);
  Circuit b(2);
  b.measure_z(1);
  b.measure_x(0);
  const int offset = a.append(b);
  EXPECT_EQ(offset, 1);
  EXPECT_EQ(a.num_cbits(), 3u);
  EXPECT_EQ(a.gates()[1].cbit, 1);
  EXPECT_EQ(a.gates()[2].cbit, 2);
}

TEST(Circuit, AppendRejectsWiderCircuit) {
  Circuit a(2);
  const Circuit b(3);
  EXPECT_THROW(a.append(b), std::invalid_argument);
}

TEST(Circuit, DepthTracksQubitChains) {
  Circuit c(3);
  c.h(0);         // depth 1 on q0
  c.cnot(0, 1);   // depth 2 on q0,q1
  c.cnot(1, 2);   // depth 3 on q1,q2
  c.h(0);         // depth 3 on q0
  EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, DepthParallelGatesDoNotStack) {
  Circuit c(4);
  c.cnot(0, 1);
  c.cnot(2, 3);  // Disjoint: same layer.
  EXPECT_EQ(c.depth(), 1u);
}

TEST(Circuit, TextRendering) {
  Circuit c(2);
  c.prep_z(0);
  c.cnot(0, 1);
  c.measure_z(1);
  const std::string text = c.to_text();
  EXPECT_NE(text.find("RZ 0"), std::string::npos);
  EXPECT_NE(text.find("CX 0 1"), std::string::npos);
  EXPECT_NE(text.find("MZ 1 -> c0"), std::string::npos);
}

}  // namespace
}  // namespace ftsp::circuit
