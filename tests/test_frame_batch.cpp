#include "sim/frame_batch.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <random>
#include <vector>

#include "sim/pauli_frame.hpp"
#include "sim/tableau.hpp"

namespace ftsp::sim {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

// ------------------------------------------------------------- kernels

TEST(FrameBatch, CnotPropagatesPerLane) {
  Circuit c(2);
  c.cnot(0, 1);
  FrameBatch batch(c, 130);  // Three words, partial tail.
  batch.flip_x_bit(0, 0);    // Lane 0: X on control.
  batch.flip_z_bit(1, 77);   // Lane 77: Z on target.
  batch.apply_circuit(c);
  EXPECT_TRUE(batch.x_bit(0, 0));
  EXPECT_TRUE(batch.x_bit(1, 0));
  EXPECT_FALSE(batch.z_bit(0, 0));
  EXPECT_TRUE(batch.z_bit(0, 77));
  EXPECT_TRUE(batch.z_bit(1, 77));
  EXPECT_FALSE(batch.x_bit(1, 77));
  // Untouched lanes stay clean.
  EXPECT_FALSE(batch.x_bit(1, 1));
  EXPECT_FALSE(batch.z_bit(0, 129));
}

TEST(FrameBatch, HadamardSwapsAllLanes) {
  Circuit c(1);
  c.h(0);
  FrameBatch batch(c, 64);
  batch.flip_x_bit(0, 3);
  batch.flip_z_bit(0, 9);
  batch.apply_circuit(c);
  EXPECT_TRUE(batch.z_bit(0, 3));
  EXPECT_FALSE(batch.x_bit(0, 3));
  EXPECT_TRUE(batch.x_bit(0, 9));
  EXPECT_FALSE(batch.z_bit(0, 9));
}

TEST(FrameBatch, MeasurementRecordsFlipsPerLane) {
  Circuit c(1);
  c.measure_z(0);
  FrameBatch batch(c, 128);
  batch.flip_x_bit(0, 5);   // X flips a Z measurement.
  batch.flip_z_bit(0, 70);  // Z does not.
  batch.apply_circuit(c);
  EXPECT_TRUE(batch.outcome_bit(0, 5));
  EXPECT_FALSE(batch.outcome_bit(0, 70));
  EXPECT_FALSE(batch.outcome_bit(0, 6));
}

TEST(FrameBatch, DepositExtractRoundTrips) {
  Circuit c(3);
  c.measure_z(0);
  c.measure_x(1);
  PauliFrame frame(c);
  frame.error.x.set(1);
  frame.error.z.set(2);
  frame.outcomes[0] = true;
  FrameBatch batch(c, 100);
  batch.deposit_frame(frame, 99);
  const PauliFrame out = batch.extract_frame(99);
  EXPECT_EQ(out.error.x, frame.error.x);
  EXPECT_EQ(out.error.z, frame.error.z);
  EXPECT_EQ(out.outcomes, frame.outcomes);
  // Neighbouring lane untouched.
  EXPECT_TRUE(batch.extract_frame(98).error.x.none());
}

// ------------------------------------------------- randomized crosschecks

Circuit random_circuit(std::mt19937_64& rng, std::size_t num_qubits,
                       std::size_t num_gates) {
  Circuit c(num_qubits);
  std::uniform_int_distribution<std::size_t> qubit(0, num_qubits - 1);
  std::uniform_int_distribution<int> kind(0, 5);
  for (std::size_t i = 0; i < num_gates; ++i) {
    const std::size_t q = qubit(rng);
    switch (kind(rng)) {
      case 0: {
        std::size_t t = qubit(rng);
        while (t == q) {
          t = qubit(rng);
        }
        c.cnot(q, t);
        break;
      }
      case 1:
        c.h(q);
        break;
      case 2:
        c.prep_z(q);
        break;
      case 3:
        c.prep_x(q);
        break;
      case 4:
        c.measure_z(q);
        break;
      default:
        c.measure_x(q);
        break;
    }
  }
  return c;
}

/// Random circuit with no random collapses: measurements are vetted by a
/// shadow tableau to be deterministic, and preps only act on qubits in a
/// definite basis state (no collapse of entangled qubits). This is the
/// domain the frame semantics are exact for, and the shape of every
/// synthesized protocol circuit (ancillas are prepped fresh). It also
/// makes the faulted-vs-noiseless tableau comparison below sample-exact:
/// with a random collapse, the two runs need not land in the same
/// physical branch.
Circuit random_deterministic_circuit(std::mt19937_64& rng,
                                     std::size_t num_qubits,
                                     std::size_t num_gates) {
  Circuit c(num_qubits);
  Tableau shadow(num_qubits);
  std::mt19937_64 shadow_rng(rng());
  std::vector<bool> ignored;
  std::uniform_int_distribution<std::size_t> qubit(0, num_qubits - 1);
  std::uniform_int_distribution<int> kind(0, 5);
  // Start from fully prepared qubits so early measurements can succeed.
  for (std::size_t q = 0; q < num_qubits; ++q) {
    if ((rng() & 1) != 0) {
      c.prep_z(q);
      shadow.prep_z(q, shadow_rng);
    } else {
      c.prep_x(q);
      shadow.prep_x(q, shadow_rng);
    }
  }
  std::size_t emitted = 0;
  std::size_t attempts = 0;
  while (emitted < num_gates && attempts < num_gates * 10) {
    ++attempts;
    const std::size_t q = qubit(rng);
    Gate gate{GateKind::H, q, 0, -1};
    switch (kind(rng)) {
      case 0: {
        std::size_t t = qubit(rng);
        while (t == q) {
          t = qubit(rng);
        }
        gate = {GateKind::Cnot, q, t, -1};
        break;
      }
      case 1:
        gate = {GateKind::H, q, 0, -1};
        break;
      case 2:
        if (!shadow.z_is_deterministic(q)) {
          continue;  // Prep would collapse an entangled qubit.
        }
        gate = {GateKind::PrepZ, q, 0, -1};
        break;
      case 3:
        if (!shadow.z_is_deterministic(q)) {
          continue;  // prep_x = prep_z + H: same collapse.
        }
        gate = {GateKind::PrepX, q, 0, -1};
        break;
      case 4:
        if (!shadow.z_is_deterministic(q)) {
          continue;  // Would be a random outcome; not in the frame domain.
        }
        gate = {GateKind::MeasZ, q, 0, 0};
        break;
      default: {
        shadow.apply_h(q);
        const bool deterministic = shadow.z_is_deterministic(q);
        shadow.apply_h(q);
        if (!deterministic) {
          continue;
        }
        gate = {GateKind::MeasX, q, 0, 0};
        break;
      }
    }
    switch (gate.kind) {
      case GateKind::Cnot:
        c.cnot(gate.q0, gate.q1);
        break;
      case GateKind::H:
        c.h(gate.q0);
        break;
      case GateKind::PrepZ:
        c.prep_z(gate.q0);
        break;
      case GateKind::PrepX:
        c.prep_x(gate.q0);
        break;
      case GateKind::MeasZ:
        gate.cbit = c.measure_z(gate.q0);
        break;
      case GateKind::MeasX:
        gate.cbit = c.measure_x(gate.q0);
        break;
    }
    ignored.resize(c.num_cbits());
    shadow.apply_gate(c.gates().back(), shadow_rng, ignored);
    ++emitted;
  }
  return c;
}

/// One random fault plan per lane: gate index -> fault-op index.
using FaultPlan = std::map<std::size_t, std::size_t>;

std::vector<FaultPlan> random_fault_plans(std::mt19937_64& rng,
                                          const std::vector<FaultSite>& sites,
                                          std::size_t shots,
                                          double fault_probability) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<FaultPlan> plans(shots);
  for (std::size_t shot = 0; shot < shots; ++shot) {
    for (std::size_t g = 0; g < sites.size(); ++g) {
      if (unit(rng) < fault_probability) {
        plans[shot][g] = rng() % sites[g].ops.size();
      }
    }
  }
  return plans;
}

TEST(FrameBatchCrossCheck, MatchesScalarFrameBitForBit) {
  std::mt19937_64 rng(0xF8A3E);
  constexpr std::size_t kShots = 130;  // Exercises full and partial words.
  for (int trial = 0; trial < 25; ++trial) {
    const Circuit c = random_circuit(rng, 6, 40);
    const auto sites = enumerate_fault_sites(c);
    const auto plans = random_fault_plans(rng, sites, kShots, 0.15);

    // Batched: all lanes at once.
    FrameBatch batch(c, kShots);
    for (std::size_t g = 0; g < c.gates().size(); ++g) {
      batch.apply_gate(c.gates()[g]);
      for (std::size_t shot = 0; shot < kShots; ++shot) {
        if (const auto it = plans[shot].find(g); it != plans[shot].end()) {
          batch.apply_fault(sites[g].ops[it->second], c.gates()[g], shot);
        }
      }
    }

    // Scalar oracle: one frame per lane, compared bit for bit.
    for (std::size_t shot = 0; shot < kShots; ++shot) {
      PauliFrame frame(c);
      for (std::size_t g = 0; g < c.gates().size(); ++g) {
        apply_gate(frame, c.gates()[g]);
        if (const auto it = plans[shot].find(g); it != plans[shot].end()) {
          apply_fault(frame, sites[g].ops[it->second], c.gates()[g]);
        }
      }
      const PauliFrame lane = batch.extract_frame(shot);
      ASSERT_EQ(lane.error.x, frame.error.x)
          << "trial " << trial << " shot " << shot;
      ASSERT_EQ(lane.error.z, frame.error.z)
          << "trial " << trial << " shot " << shot;
      ASSERT_EQ(lane.outcomes, frame.outcomes)
          << "trial " << trial << " shot " << shot;
    }
  }
}

TEST(FrameBatchCrossCheck, OutcomeFlipsMatchTableau) {
  // The frame records, per measurement, the flip relative to the
  // noiseless run. The tableau simulator is the ground truth: on circuits
  // with deterministic noiseless outcomes (the frame domain — every
  // synthesized circuit has this shape), running the tableau with the
  // fault injected as explicit Pauli gates gives outcome vectors whose
  // XOR against the noiseless outcomes must equal the frame's flip bits.
  std::mt19937_64 rng(0xBEEF);
  constexpr std::size_t kShots = 64;
  for (int trial = 0; trial < 10; ++trial) {
    const Circuit c = random_deterministic_circuit(rng, 5, 30);
    const auto sites = enumerate_fault_sites(c);
    const auto plans = random_fault_plans(rng, sites, kShots, 0.08);
    const std::uint64_t tableau_seed = rng();

    FrameBatch batch(c, kShots);
    for (std::size_t g = 0; g < c.gates().size(); ++g) {
      batch.apply_gate(c.gates()[g]);
      for (std::size_t shot = 0; shot < kShots; ++shot) {
        if (const auto it = plans[shot].find(g); it != plans[shot].end()) {
          batch.apply_fault(sites[g].ops[it->second], c.gates()[g], shot);
        }
      }
    }

    // Noiseless tableau reference.
    std::mt19937_64 ref_rng(tableau_seed);
    Tableau reference(c.num_qubits());
    const std::vector<bool> ref_outcomes = reference.run(c, ref_rng);

    for (std::size_t shot = 0; shot < kShots; ++shot) {
      std::mt19937_64 run_rng(tableau_seed);
      Tableau tableau(c.num_qubits());
      std::vector<bool> outcomes(c.num_cbits(), false);
      for (std::size_t g = 0; g < c.gates().size(); ++g) {
        const Gate& gate = c.gates()[g];
        tableau.apply_gate(gate, run_rng, outcomes);
        if (const auto it = plans[shot].find(g); it != plans[shot].end()) {
          const FaultOp& op = sites[g].ops[it->second];
          for (int t = 0; t < op.num_terms; ++t) {
            const auto& term = op.terms[static_cast<std::size_t>(t)];
            if (term.x) {
              tableau.apply_x(term.qubit);
            }
            if (term.z) {
              tableau.apply_z(term.qubit);
            }
          }
          if (op.flip_outcome) {
            const auto bit = static_cast<std::size_t>(gate.cbit);
            outcomes[bit] = !outcomes[bit];
          }
        }
      }
      for (std::size_t b = 0; b < c.num_cbits(); ++b) {
        ASSERT_EQ(outcomes[b] != ref_outcomes[b], batch.outcome_bit(b, shot))
            << "trial " << trial << " shot " << shot << " cbit " << b;
      }
    }
  }
}

// ------------------------------------------------- wide (SIMD) word batch

TEST(WideFrameBatch, LaneLayoutMatchesU64View) {
  // Lane l of a SimdWord row must live in sub-word l/64, bit l%64 —
  // the contract that makes the wide sampler consume the same RNG
  // stream as the u64 one.
  WideFrameBatch batch(1, 1, 300);
  EXPECT_EQ(batch.num_words(), 2u);  // ceil(300 / 256).
  for (const std::size_t lane : {0u, 63u, 64u, 255u, 256u, 299u}) {
    batch.flip_x_bit(0, lane);
    EXPECT_TRUE(batch.x_bit(0, lane));
    const SimdWord& word = batch.x_row(0)[lane / 256];
    EXPECT_EQ((word.v[(lane % 256) / 64] >> (lane % 64)) & 1, 1u)
        << "lane " << lane;
    batch.flip_x_bit(0, lane);
    EXPECT_FALSE(batch.x_bit(0, lane));
  }
}

TEST(WideFrameBatch, BitIdenticalToU64BatchOnRandomCircuits) {
  std::mt19937_64 rng(0x51D3);
  constexpr std::size_t kShots = 530;  // > 2 SimdWords, partial tail.
  for (int trial = 0; trial < 10; ++trial) {
    const Circuit c = random_circuit(rng, 6, 40);
    const auto sites = enumerate_fault_sites(c);
    const auto plans = random_fault_plans(rng, sites, kShots, 0.1);

    FrameBatch narrow(c, kShots);
    WideFrameBatch wide(c, kShots);
    for (std::size_t g = 0; g < c.gates().size(); ++g) {
      narrow.apply_gate(c.gates()[g]);
      wide.apply_gate(c.gates()[g]);
      for (std::size_t shot = 0; shot < kShots; ++shot) {
        if (const auto it = plans[shot].find(g); it != plans[shot].end()) {
          narrow.apply_fault(sites[g].ops[it->second], c.gates()[g], shot);
          wide.apply_fault(sites[g].ops[it->second], c.gates()[g], shot);
        }
      }
    }
    for (std::size_t shot = 0; shot < kShots; ++shot) {
      for (std::size_t q = 0; q < c.num_qubits(); ++q) {
        ASSERT_EQ(narrow.x_bit(q, shot), wide.x_bit(q, shot))
            << "trial " << trial << " shot " << shot << " qubit " << q;
        ASSERT_EQ(narrow.z_bit(q, shot), wide.z_bit(q, shot))
            << "trial " << trial << " shot " << shot << " qubit " << q;
      }
      for (std::size_t b = 0; b < c.num_cbits(); ++b) {
        ASSERT_EQ(narrow.outcome_bit(b, shot), wide.outcome_bit(b, shot))
            << "trial " << trial << " shot " << shot << " cbit " << b;
      }
    }
  }
}

TEST(WideFrameBatch, DepositExtractRoundTripsAcrossSubWords) {
  Circuit c(3);
  c.measure_z(0);
  c.measure_x(1);
  PauliFrame frame(c);
  frame.error.x.set(1);
  frame.error.z.set(2);
  frame.outcomes[0] = true;
  WideFrameBatch batch(c, 512);
  for (const std::size_t shot : {0u, 70u, 130u, 200u, 511u}) {
    batch.deposit_frame(frame, shot);
    const PauliFrame out = batch.extract_frame(shot);
    EXPECT_EQ(out.error.x, frame.error.x);
    EXPECT_EQ(out.error.z, frame.error.z);
    EXPECT_EQ(out.outcomes, frame.outcomes);
  }
  EXPECT_TRUE(batch.extract_frame(69).error.x.none());
}

// --------------------------------------------------------- bernoulli_word

TEST(BernoulliWord, EdgeProbabilities) {
  std::mt19937_64 rng(1);
  EXPECT_EQ(bernoulli_word(rng, 0.0), 0u);
  EXPECT_EQ(bernoulli_word(rng, -1.0), 0u);
  EXPECT_EQ(bernoulli_word(rng, 1.0), ~std::uint64_t{0});
  EXPECT_EQ(bernoulli_word(rng, 2.0), ~std::uint64_t{0});
}

TEST(BernoulliWord, MatchesExpectedDensity) {
  std::mt19937_64 rng(42);
  for (const double p : {0.003, 0.05, 0.3, 0.7}) {
    constexpr int kWords = 4000;
    std::size_t total = 0;
    for (int i = 0; i < kWords; ++i) {
      total += static_cast<std::size_t>(std::popcount(bernoulli_word(rng, p)));
    }
    const double n = 64.0 * kWords;
    const double mean = static_cast<double>(total) / n;
    // 6 sigma for a binomial proportion.
    const double tolerance = 6.0 * std::sqrt(p * (1.0 - p) / n);
    EXPECT_NEAR(mean, p, tolerance) << "p = " << p;
  }
}

TEST(BernoulliWord, DeterministicForSeed) {
  std::mt19937_64 a(7);
  std::mt19937_64 b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(bernoulli_word(a, 0.1), bernoulli_word(b, 0.1));
  }
}

}  // namespace
}  // namespace ftsp::sim
