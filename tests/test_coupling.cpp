// qec::CouplingMap: built-in topologies, the text parser, structural
// fingerprints, connectivity queries and the reach closure — the
// foundations of connectivity-aware synthesis.
#include "qec/coupling.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "qec/code_io.hpp"

namespace ftsp::qec {
namespace {

using f2::BitVec;

TEST(CouplingMap, BuiltinShapes) {
  const auto linear = CouplingMap::linear(7);
  EXPECT_EQ(linear.num_sites(), 7u);
  EXPECT_EQ(linear.num_edges(), 6u);
  EXPECT_TRUE(linear.allows(2, 3));
  EXPECT_TRUE(linear.allows(3, 2));
  EXPECT_FALSE(linear.allows(0, 2));
  EXPECT_FALSE(linear.allows(3, 3));
  EXPECT_FALSE(linear.is_all_to_all());

  const auto ring = CouplingMap::ring(7);
  EXPECT_EQ(ring.num_edges(), 7u);
  EXPECT_TRUE(ring.allows(6, 0));

  const auto grid = CouplingMap::grid(3, 3);
  EXPECT_EQ(grid.num_sites(), 9u);
  EXPECT_EQ(grid.num_edges(), 12u);
  EXPECT_TRUE(grid.allows(0, 1));
  EXPECT_TRUE(grid.allows(1, 4));
  EXPECT_FALSE(grid.allows(0, 4));  // Diagonal.

  const auto all = CouplingMap::all_to_all(5);
  EXPECT_TRUE(all.is_all_to_all());
  EXPECT_EQ(all.num_edges(), 10u);

  // grid(n) picks the most-square factorization; primes degrade to a
  // chain, so grid(7) is structurally linear(7).
  EXPECT_EQ(CouplingMap::grid(9).fingerprint(),
            CouplingMap::grid(3, 3).fingerprint());
  EXPECT_EQ(CouplingMap::grid(7).fingerprint(),
            CouplingMap::linear(7).fingerprint());

  // heavy-hex: connected, with degree-1 pendants after the first cell.
  const auto hex = CouplingMap::heavy_hex(12);
  BitVec everything(12);
  for (std::size_t q = 0; q < 12; ++q) {
    everything.set(q);
  }
  EXPECT_TRUE(hex.is_connected_subset(everything));
  std::size_t pendants = 0;
  for (std::size_t q = 0; q < 12; ++q) {
    if (hex.neighbors(q).popcount() == 1) {
      ++pendants;
    }
  }
  EXPECT_GE(pendants, 2u);
}

TEST(CouplingMap, BuiltinNamesResolve) {
  for (const auto& name : CouplingMap::builtin_names()) {
    EXPECT_TRUE(CouplingMap::is_builtin_name(name));
    const auto map = CouplingMap::builtin(name, 9);
    EXPECT_EQ(map.num_sites(), 9u);
    EXPECT_EQ(map.name(), name);
  }
  EXPECT_FALSE(CouplingMap::is_builtin_name("torus"));
  EXPECT_THROW(CouplingMap::builtin("torus", 9), std::invalid_argument);
}

TEST(CouplingMap, FromEdgesValidates) {
  const auto map =
      CouplingMap::from_edges("dev", 4, {{0, 1}, {1, 0}, {2, 3}, {2, 3}});
  EXPECT_EQ(map.num_edges(), 2u);  // Duplicates and orientations collapse.
  EXPECT_THROW(CouplingMap::from_edges("bad", 3, {{0, 0}}),
               std::invalid_argument);
  EXPECT_THROW(CouplingMap::from_edges("bad", 3, {{0, 3}}),
               std::invalid_argument);
  EXPECT_THROW(CouplingMap::from_edges("empty", 0, {}),
               std::invalid_argument);
}

TEST(CouplingMap, TextFormatRoundTrips) {
  const auto grid = CouplingMap::grid(3, 3);
  const std::string text = write_coupling_map(grid);
  const auto parsed = parse_coupling_map(text);
  EXPECT_EQ(parsed.name(), "grid");
  EXPECT_EQ(parsed.num_sites(), grid.num_sites());
  EXPECT_EQ(parsed.fingerprint(), grid.fingerprint());

  const auto custom = parse_coupling_map(
      "# a comment\n"
      "coupling: my-device\n"
      "sites: 4\n"
      "edges:\n"
      "0 1\n"
      "  1 2   \n"
      "\n"
      "2 3\n");
  EXPECT_EQ(custom.name(), "my-device");
  EXPECT_EQ(custom.fingerprint(), CouplingMap::linear(4).fingerprint());

  EXPECT_THROW(parse_coupling_map("edges:\n0 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_coupling_map("sites: 3\n0 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_coupling_map("sites: 3\nedges:\n0 1 2\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_coupling_map("sites: 3\nedges:\nx y\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_coupling_map("sites: 3\nedges:\n0 5\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_coupling_map("sites: 0\nedges:\n"),
               std::invalid_argument);
  // Strict sites parsing: negatives must not wrap through unsigned
  // extraction, junk must not be ignored, absurd counts must not turn
  // into multi-gigabyte adjacency allocations.
  EXPECT_THROW(parse_coupling_map("sites: -1\nedges:\n0 1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_coupling_map("sites: 7 junk\nedges:\n0 1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_coupling_map("sites: 99999999\nedges:\n0 1\n"),
               std::invalid_argument);
}

TEST(CouplingMap, FingerprintIsStructural) {
  // Name does not participate; structure does.
  const auto a = CouplingMap::from_edges("foo", 3, {{0, 1}, {1, 2}});
  const auto b = CouplingMap::from_edges("bar", 3, {{1, 2}, {0, 1}});
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(CouplingMap::linear(7).fingerprint(),
            CouplingMap::ring(7).fingerprint());
  EXPECT_NE(CouplingMap::linear(7).fingerprint(),
            CouplingMap::linear(8).fingerprint());
}

/// Brute-force reference connectivity via DFS over an explicit adjacency
/// list.
bool reference_connected(const CouplingMap& map, const BitVec& support) {
  const auto members = support.ones();
  if (members.size() <= 1) {
    return true;
  }
  std::set<std::size_t> in(members.begin(), members.end());
  std::set<std::size_t> seen;
  std::vector<std::size_t> stack = {members[0]};
  while (!stack.empty()) {
    const std::size_t q = stack.back();
    stack.pop_back();
    if (!seen.insert(q).second) {
      continue;
    }
    for (std::size_t other : members) {
      if (map.allows(q, other)) {
        stack.push_back(other);
      }
    }
  }
  return seen.size() == members.size();
}

TEST(CouplingMap, ConnectedSubsetMatchesBruteForce) {
  std::mt19937_64 rng(1234);
  for (std::size_t trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 + rng() % 9;
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (rng() % 3 == 0) {
          edges.emplace_back(a, b);
        }
      }
    }
    const auto map = CouplingMap::from_edges("rand", n, edges);
    BitVec support(n);
    for (std::size_t q = 0; q < n; ++q) {
      support.set(q, rng() % 2 == 0);
    }
    EXPECT_EQ(map.is_connected_subset(support),
              reference_connected(map, support))
        << "n=" << n << " support=" << support.to_string();
  }
}

TEST(CouplingMap, WalkOrderIsAHamiltonianPath) {
  const auto grid = CouplingMap::grid(3, 3);
  BitVec support(9, {0, 1, 4, 5, 8});  // Staircase: 0-1-4-5-8.
  ASSERT_TRUE(grid.has_walk(support));
  const auto order = grid.walk_order(support);
  ASSERT_EQ(order.size(), support.popcount());
  // Consecutive sites are coupled — a genuine ancilla walk, strictly
  // stronger than mere connectivity.
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_TRUE(grid.allows(order[i - 1], order[i]))
        << order[i - 1] << " -> " << order[i];
  }
  // Deterministic: the same support always yields the same walk.
  EXPECT_EQ(order, grid.walk_order(support));

  // Disconnected support: no walk exists.
  BitVec disconnected(9, {0, 8});
  EXPECT_THROW(grid.walk_order(disconnected), std::invalid_argument);
  EXPECT_FALSE(grid.is_connected_subset(disconnected));
  EXPECT_FALSE(grid.has_walk(disconnected));

  // Connected but walkless: a star's center cannot be revisited. The
  // 4-star {1,3,4,5} on the grid (center 4) plus site 7 keeps exactly
  // one revisit-free escape, but the full star {1,3,5,7}+center has
  // none once three leaves remain.
  const auto star = CouplingMap::from_edges(
      "star", 4, {{0, 1}, {0, 2}, {0, 3}});
  BitVec all4(4, {0, 1, 2, 3});
  EXPECT_TRUE(star.is_connected_subset(all4));
  EXPECT_FALSE(star.has_walk(all4));
  EXPECT_THROW(star.walk_order(all4), std::invalid_argument);

  // Randomized walks are still valid walks.
  std::mt19937_64 rng(7);
  for (int t = 0; t < 20; ++t) {
    const auto starts = support.ones();
    const auto walk =
        grid.walk_order_from(support, starts[rng() % starts.size()], &rng);
    if (walk.empty()) {
      continue;  // No walk from that start.
    }
    ASSERT_EQ(walk.size(), support.popcount());
    for (std::size_t i = 1; i < walk.size(); ++i) {
      EXPECT_TRUE(grid.allows(walk[i - 1], walk[i]));
    }
  }
}

TEST(CouplingMap, ClosureSemantics) {
  const auto linear = CouplingMap::linear(5);
  // Reach 1 is the map itself.
  EXPECT_EQ(linear.closure(1).fingerprint(), linear.fingerprint());
  // Reach 2 adds the distance-2 pairs of a chain.
  const auto two = linear.closure(2);
  EXPECT_TRUE(two.allows(0, 2));
  EXPECT_FALSE(two.allows(0, 3));
  // Reach 0 of a connected map is all-to-all.
  EXPECT_TRUE(linear.closure(0).is_all_to_all());
  // Reach 0 of a disconnected map completes per component only.
  const auto split =
      CouplingMap::from_edges("split", 4, {{0, 1}, {2, 3}});
  const auto comp = split.closure(0);
  EXPECT_TRUE(comp.allows(0, 1));
  EXPECT_FALSE(comp.allows(1, 2));
  EXPECT_FALSE(comp.is_all_to_all());
}

TEST(CouplingSpec, ResolveAndKeyFragments) {
  CouplingSpec all;
  EXPECT_TRUE(all.is_all_to_all());
  EXPECT_EQ(all.resolve(7), nullptr);
  EXPECT_EQ(all.key_fragment(7), "");

  CouplingSpec linear;
  linear.name = "linear";
  const auto map = linear.resolve(7);
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->name(), "linear");
  EXPECT_EQ(linear.key_fragment(7), "|coup=" + map->fingerprint());
  // Gadget reach participates in the key: a strict-walk artifact must
  // never alias the unbounded-transport one.
  CouplingSpec strict = linear;
  strict.gadget_reach = 1;
  EXPECT_EQ(strict.key_fragment(7),
            "|coup=" + map->fingerprint() + "+g1");
  // Gadget graph: connected map at reach 0 is unconstraining; reach 1
  // is the raw map again.
  EXPECT_EQ(linear.resolve_gadget(7), nullptr);
  const auto gadget = strict.resolve_gadget(7);
  ASSERT_NE(gadget, nullptr);
  EXPECT_EQ(gadget->fingerprint(), map->fingerprint());

  // A custom all-to-all map is structurally unconstrained: same
  // resolution, same (empty) key fragment.
  CouplingSpec custom_all;
  custom_all.name = "full";
  custom_all.custom =
      std::make_shared<const CouplingMap>(CouplingMap::all_to_all(7));
  EXPECT_TRUE(custom_all.is_all_to_all());
  EXPECT_EQ(custom_all.resolve(7), nullptr);
  EXPECT_EQ(custom_all.key_fragment(7), "");

  // Size mismatches fail loud.
  CouplingSpec wrong;
  wrong.custom =
      std::make_shared<const CouplingMap>(CouplingMap::linear(5));
  EXPECT_THROW(wrong.resolve(7), std::invalid_argument);
}

}  // namespace
}  // namespace ftsp::qec
