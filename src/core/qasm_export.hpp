#pragma once

#include <string>

#include "circuit/circuit.hpp"
#include "core/protocol.hpp"

namespace ftsp::core {

/// Renders a plain circuit as OpenQASM 3 (resets, h, cx, measure).
std::string circuit_to_qasm(const circuit::Circuit& circuit,
                            const std::string& qreg_name = "q");

/// Renders the *entire* deterministic protocol as one OpenQASM 3 program:
/// preparation, per-layer verification measurements into classical
/// registers, conditional correction branches as `if` blocks comparing
/// those registers (with nested `if`s for the extended syndromes and the
/// recovery Paulis), and the Fig. 3(e) early termination as an enclosing
/// `if (flags == 0)` around the second layer.
///
/// The output is the hand-off artifact for running the synthesized
/// protocol on hardware or through other toolchains; qubits are laid out
/// as one register with the data block first and every ancilla/flag of
/// every gadget appended (no reuse).
std::string protocol_to_qasm(const Protocol& protocol);

}  // namespace ftsp::core
