#include "core/qasm_export.hpp"

#include <cassert>
#include <map>
#include <sstream>
#include <vector>

namespace ftsp::core {

namespace {

using circuit::Gate;
using circuit::GateKind;

/// Emits one gate with qubit indices remapped through `qubit_of` and
/// measurement targets resolved through `creg_of` (register name, bit).
template <typename QubitMap, typename CregMap>
void emit_gate(std::ostringstream& out, const std::string& indent,
               const Gate& g, QubitMap&& qubit_of, CregMap&& creg_of) {
  switch (g.kind) {
    case GateKind::Cnot:
      out << indent << "cx q[" << qubit_of(g.q0) << "], q["
          << qubit_of(g.q1) << "];\n";
      break;
    case GateKind::H:
      out << indent << "h q[" << qubit_of(g.q0) << "];\n";
      break;
    case GateKind::PrepZ:
      out << indent << "reset q[" << qubit_of(g.q0) << "];\n";
      break;
    case GateKind::PrepX:
      out << indent << "reset q[" << qubit_of(g.q0) << "];\n";
      out << indent << "h q[" << qubit_of(g.q0) << "];\n";
      break;
    case GateKind::MeasX:
      out << indent << "h q[" << qubit_of(g.q0) << "];\n";
      [[fallthrough]];
    case GateKind::MeasZ: {
      const auto [reg, bit] = creg_of(g.cbit);
      out << indent << reg << '[' << bit << "] = measure q["
          << qubit_of(g.q0) << "];\n";
      break;
    }
  }
}

/// Value of the sub-pattern of `key` restricted to the given bit
/// positions, interpreted LSB-first.
unsigned long sub_pattern(const f2::BitVec& key,
                          const std::vector<int>& positions) {
  unsigned long value = 0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (key.get(static_cast<std::size_t>(positions[i]))) {
      value |= 1UL << i;
    }
  }
  return value;
}

unsigned long pattern_value(const f2::BitVec& pattern) {
  unsigned long value = 0;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    if (pattern.get(i)) {
      value |= 1UL << i;
    }
  }
  return value;
}

}  // namespace

std::string circuit_to_qasm(const circuit::Circuit& circuit,
                            const std::string& qreg_name) {
  std::ostringstream out;
  out << "OPENQASM 3.0;\n";
  out << "include \"stdgates.inc\";\n";
  out << "qubit[" << circuit.num_qubits() << "] " << qreg_name << ";\n";
  if (circuit.num_cbits() > 0) {
    out << "bit[" << circuit.num_cbits() << "] c;\n";
  }
  for (const Gate& g : circuit.gates()) {
    // Local emission: identity maps (rename the register inline).
    std::ostringstream line;
    emit_gate(
        line, "", g, [](std::size_t q) { return q; },
        [](int cbit) { return std::make_pair(std::string("c"), cbit); });
    std::string text = line.str();
    if (qreg_name != "q") {
      std::string::size_type pos = 0;
      while ((pos = text.find("q[", pos)) != std::string::npos) {
        text.replace(pos, 1, qreg_name);
        pos += qreg_name.size() + 1;
      }
    }
    out << text;
  }
  return out.str();
}

std::string protocol_to_qasm(const Protocol& protocol) {
  const std::size_t n = protocol.num_data_qubits();

  // Global qubit layout: data block first, then each segment's ancillas.
  std::size_t next_qubit = n;
  const auto allocate = [&](const circuit::Circuit& c) {
    const std::size_t offset = next_qubit;
    next_qubit += c.num_qubits() - n;
    return offset;
  };

  struct LayerEmission {
    const CompiledLayer* layer;
    std::size_t ancilla_offset;
    std::vector<int> outcome_positions;  // cbit -> syndrome register slot
    std::vector<int> flag_positions;     // cbit -> flag register slot
    std::string v_name;
    std::string f_name;
  };
  std::vector<LayerEmission> layers;
  int layer_index = 0;
  for (const auto* layer : {&protocol.layer1, &protocol.layer2}) {
    ++layer_index;
    if (!layer->has_value()) {
      continue;
    }
    LayerEmission emission;
    emission.layer = &**layer;
    emission.ancilla_offset = allocate(emission.layer->verif);
    emission.v_name = "v" + std::to_string(layer_index);
    emission.f_name = "f" + std::to_string(layer_index);
    int v_slot = 0;
    int f_slot = 0;
    emission.outcome_positions.assign(emission.layer->verif.num_cbits(),
                                      -1);
    emission.flag_positions.assign(emission.layer->verif.num_cbits(), -1);
    for (const auto& gadget : emission.layer->gadgets) {
      emission.outcome_positions[static_cast<std::size_t>(
          gadget.outcome_bit)] = v_slot++;
      if (gadget.flagged) {
        emission.flag_positions[static_cast<std::size_t>(
            gadget.flag_bit)] = f_slot++;
      }
    }
    layers.push_back(std::move(emission));
  }

  // Pre-allocate branch ancillas and classical registers.
  std::ostringstream decls;
  std::map<const CompiledBranch*, std::pair<std::size_t, std::string>>
      branch_info;  // offset + extended-register name
  for (const auto& emission : layers) {
    int branch_id = 0;
    for (const auto& [key, branch] : emission.layer->branches) {
      (void)key;
      const std::size_t offset = allocate(branch.circ);
      std::string ereg;
      if (!branch.plan.measurements.empty()) {
        ereg = "e" + emission.v_name.substr(1) + "_" +
               std::to_string(branch_id);
        decls << "bit[" << branch.plan.measurements.size() << "] " << ereg
              << ";\n";
      }
      branch_info.emplace(&branch, std::make_pair(offset, ereg));
      ++branch_id;
    }
  }

  std::ostringstream body;
  // Preparation over the data block (no remapping needed).
  for (const Gate& g : protocol.prep.gates()) {
    emit_gate(
        body, "", g, [](std::size_t q) { return q; },
        [](int) { return std::make_pair(std::string("c"), 0); });
  }

  std::string indent;
  for (const auto& emission : layers) {
    const CompiledLayer& layer = *emission.layer;
    const auto qubit_of = [&](std::size_t q) {
      return q < n ? q : emission.ancilla_offset + (q - n);
    };
    const auto creg_of = [&](int cbit) {
      const auto b = static_cast<std::size_t>(cbit);
      if (emission.flag_positions[b] >= 0) {
        return std::make_pair(emission.f_name, emission.flag_positions[b]);
      }
      return std::make_pair(emission.v_name, emission.outcome_positions[b]);
    };
    body << indent << "// layer verification ("
         << name(layer.error_type) << " errors)\n";
    for (const Gate& g : layer.verif.gates()) {
      emit_gate(body, indent, g, qubit_of, creg_of);
    }

    // Branches: if (v == kv) [ if (f == kf) ] { measurements; recoveries }.
    for (const auto& [key, branch] : layer.branches) {
      // Position lists in slot order (slot i of the register is cbit
      // slot_to_cbit[i] of the verification circuit).
      std::vector<int> slot_to_cbit_v;
      std::vector<int> slot_to_cbit_f;
      for (std::size_t b = 0; b < emission.outcome_positions.size(); ++b) {
        if (emission.outcome_positions[b] >= 0) {
          slot_to_cbit_v.push_back(static_cast<int>(b));
        }
        if (emission.flag_positions[b] >= 0) {
          slot_to_cbit_f.push_back(static_cast<int>(b));
        }
      }
      const unsigned long value_v = sub_pattern(key, slot_to_cbit_v);
      const unsigned long value_f = sub_pattern(key, slot_to_cbit_f);

      body << indent << "if (" << emission.v_name << " == " << value_v
           << ") {\n";
      std::string inner = indent + "  ";
      const bool has_flags = !slot_to_cbit_f.empty();
      if (has_flags) {
        body << inner << "if (" << emission.f_name << " == " << value_f
             << ") {\n";
        inner += "  ";
      }

      const auto& [offset, ereg] = branch_info.at(&branch);
      const auto branch_qubit_of = [&, offset = offset](std::size_t q) {
        return q < n ? q : offset + (q - n);
      };
      const auto branch_creg_of = [&, ereg = ereg](int cbit) {
        return std::make_pair(ereg, cbit);
      };
      for (const Gate& g : branch.circ.gates()) {
        emit_gate(body, inner, g, branch_qubit_of, branch_creg_of);
      }
      for (const auto& [pattern, recovery] : branch.plan.recoveries) {
        std::string rec_indent = inner;
        const bool conditional = !branch.plan.measurements.empty();
        if (conditional) {
          body << inner << "if (" << ereg << " == "
               << pattern_value(pattern) << ") {\n";
          rec_indent += "  ";
        }
        for (std::size_t qubit : recovery.ones()) {
          body << rec_indent
               << (branch.corrected_type == qec::PauliType::X ? "x" : "z")
               << " q[" << qubit << "];\n";
        }
        if (conditional) {
          body << inner << "}\n";
        }
      }

      if (has_flags) {
        body << indent << "  }\n";
      }
      body << indent << "}\n";
    }

    // Fig. 3(e): anything after this layer only runs if no flag fired.
    if (layer.flag_mask.any()) {
      body << indent << "if (" << emission.f_name << " == 0) {\n";
      indent += "  ";
    }
  }
  // Close the termination scopes.
  while (!indent.empty()) {
    indent.resize(indent.size() - 2);
    body << indent << "}\n";
  }

  std::ostringstream out;
  out << "OPENQASM 3.0;\n";
  out << "include \"stdgates.inc\";\n";
  out << "// " << protocol.code->description() << ", deterministic FT "
      << name(protocol.basis) << " preparation\n";
  out << "qubit[" << next_qubit << "] q;\n";
  for (const auto& emission : layers) {
    std::size_t v_count = 0;
    std::size_t f_count = 0;
    for (const auto& gadget : emission.layer->gadgets) {
      ++v_count;
      f_count += gadget.flagged ? 1 : 0;
    }
    out << "bit[" << v_count << "] " << emission.v_name << ";\n";
    if (f_count > 0) {
      out << "bit[" << f_count << "] " << emission.f_name << ";\n";
    }
  }
  out << decls.str();
  out << body.str();
  return out.str();
}

}  // namespace ftsp::core
