#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "f2/bit_matrix.hpp"
#include "f2/bit_vec.hpp"

namespace ftsp::f2 {

/// Result of reduced-row-echelon-form elimination.
struct RrefResult {
  BitMatrix reduced;               ///< RREF of the input (zero rows kept).
  std::vector<std::size_t> pivots; ///< Pivot column of each nonzero row.
};

/// Computes the reduced row echelon form of `m`.
RrefResult rref(const BitMatrix& m);

/// Rank of `m`.
std::size_t rank(const BitMatrix& m);

/// A basis of the right kernel: all `v` with `m * v = 0`.
/// Returns one `BitVec` (length `cols`) per kernel dimension.
std::vector<BitVec> kernel_basis(const BitMatrix& m);

/// Solves `m * x = b` for one solution, or nullopt if inconsistent.
std::optional<BitVec> solve(const BitMatrix& m, const BitVec& b);

/// True iff `v` lies in the row space of `m`.
bool in_row_span(const BitMatrix& m, const BitVec& v);

/// Reduces `v` against the RREF rows of `basis_rref` (pivot columns
/// `pivots`), yielding the canonical coset representative of `v` modulo the
/// row space. Two vectors are in the same coset iff their reductions agree.
BitVec reduce_against(const BitVec& v, const BitMatrix& basis_rref,
                      const std::vector<std::size_t>& pivots);

/// Returns a subset of row indices of `m` forming a basis of its row space
/// (greedy, in row order).
std::vector<std::size_t> independent_rows(const BitMatrix& m);

/// Expresses `v` as a combination of the rows of `m`, i.e. finds `c` with
/// `m^T * c = v` (c has length `m.rows()`), or nullopt if `v` is not in the
/// row span.
std::optional<BitVec> express_in_rows(const BitMatrix& m, const BitVec& v);

}  // namespace ftsp::f2
