// Stress and randomized cross-checks for the CDCL solver and encodings
// beyond the basic unit tests: XOR systems vs Gaussian elimination,
// cardinality formulas vs combinatorics, and repeated incremental use.
#include <gtest/gtest.h>

#include <random>

#include "f2/bit_matrix.hpp"
#include "f2/gauss.hpp"
#include "sat/cnf_builder.hpp"
#include "sat/solver.hpp"

namespace ftsp::sat {
namespace {

/// Random F2 linear systems: SAT verdict must equal Gaussian solvability,
/// and models must satisfy every equation.
class XorSystem : public ::testing::TestWithParam<int> {};

TEST_P(XorSystem, AgreesWithGaussianElimination) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  std::uniform_int_distribution<int> bit(0, 1);
  const std::size_t vars = 14;
  const std::size_t equations = 16;

  f2::BitMatrix a(equations, vars);
  f2::BitVec rhs(equations);
  for (std::size_t e = 0; e < equations; ++e) {
    for (std::size_t v = 0; v < vars; ++v) {
      a.set(e, v, bit(rng) != 0);
    }
    rhs.set(e, bit(rng) != 0);
  }

  Solver solver;
  CnfBuilder cnf(solver);
  std::vector<Lit> lits;
  for (std::size_t v = 0; v < vars; ++v) {
    lits.push_back(cnf.fresh());
  }
  for (std::size_t e = 0; e < equations; ++e) {
    std::vector<Lit> terms;
    for (std::size_t v = 0; v < vars; ++v) {
      if (a.get(e, v)) {
        terms.push_back(lits[v]);
      }
    }
    const Lit parity = cnf.xor_of(terms);
    solver.add_unit(rhs.get(e) ? parity : ~parity);
  }

  const bool sat = solver.solve();
  EXPECT_EQ(sat, f2::solve(a, rhs).has_value());
  if (sat) {
    f2::BitVec x(vars);
    for (std::size_t v = 0; v < vars; ++v) {
      x.set(v, solver.model_value(lits[v]));
    }
    EXPECT_EQ(a.multiply(x), rhs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XorSystem, ::testing::Range(0, 30));

/// Exactly-k via at-most-k both ways: the number of models of
/// "sum x_i == k" over n free variables must be C(n, k).
class ExactlyK : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ExactlyK, ModelCountMatchesBinomial) {
  const auto [n, k] = GetParam();
  Solver solver;
  CnfBuilder cnf(solver);
  std::vector<Lit> lits;
  std::vector<Lit> negated;
  for (int i = 0; i < n; ++i) {
    lits.push_back(cnf.fresh());
    negated.push_back(~lits.back());
  }
  cnf.add_at_most_k(lits, static_cast<std::size_t>(k));
  cnf.add_at_most_k(negated, static_cast<std::size_t>(n - k));

  // Enumerate all models by blocking.
  std::size_t models = 0;
  while (solver.solve() && models < 1000) {
    ++models;
    std::vector<Lit> block;
    for (const Lit l : lits) {
      block.push_back(solver.model_value(l) ? ~l : l);
    }
    solver.add_clause(block);
  }
  // C(n, k)
  std::size_t expected = 1;
  for (int i = 0; i < k; ++i) {
    expected = expected * static_cast<std::size_t>(n - i) /
               static_cast<std::size_t>(i + 1);
  }
  EXPECT_EQ(models, expected) << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ExactlyK,
    ::testing::Values(std::pair{5, 2}, std::pair{6, 3}, std::pair{7, 1},
                      std::pair{7, 6}, std::pair{8, 4}));

TEST(SolverStress, ManyIncrementalRounds) {
  // Alternate clause additions and solves; the solver must stay
  // consistent across hundreds of rounds (watch lists, learnt clauses,
  // level-0 propagation).
  std::mt19937_64 rng(99);
  Solver solver;
  std::vector<Var> vars;
  for (int i = 0; i < 40; ++i) {
    vars.push_back(solver.new_var());
  }
  std::uniform_int_distribution<std::size_t> pick(0, vars.size() - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  int sat_count = 0;
  for (int round = 0; round < 300 && solver.okay(); ++round) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(Lit(vars[pick(rng)], coin(rng) != 0));
    }
    solver.add_clause(clause);
    if (round % 10 == 0) {
      sat_count += solver.solve() ? 1 : 0;
    }
  }
  EXPECT_GT(sat_count, 0);
  EXPECT_GT(solver.stats().propagations, 0u);
}

TEST(SolverStress, AssumptionSweepOverPigeonhole) {
  // PHP(4,4) is satisfiable; forcing pigeon 0 into each hole via
  // assumptions must remain satisfiable, and forcing two pigeons into
  // the same hole must fail.
  Solver solver;
  Var p[4][4];
  for (auto& row : p) {
    for (auto& v : row) {
      v = solver.new_var();
    }
  }
  for (int i = 0; i < 4; ++i) {
    std::vector<Lit> clause;
    for (int h = 0; h < 4; ++h) {
      clause.push_back(pos(p[i][h]));
    }
    solver.add_clause(clause);
  }
  for (int h = 0; h < 4; ++h) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        solver.add_binary(neg(p[i][h]), neg(p[j][h]));
      }
    }
  }
  for (int h = 0; h < 4; ++h) {
    EXPECT_TRUE(solver.solve({pos(p[0][h])})) << "hole " << h;
    EXPECT_FALSE(solver.solve({pos(p[0][h]), pos(p[1][h])}));
  }
  EXPECT_TRUE(solver.solve());
}

TEST(SolverStress, StatisticsAreMonotone) {
  Solver solver;
  for (int i = 0; i < 20; ++i) {
    solver.new_var();
  }
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<Var> pick(0, 19);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uint64_t last_conflicts = 0;
  for (int round = 0; round < 20; ++round) {
    for (int c = 0; c < 8; ++c) {
      solver.add_ternary(Lit(pick(rng), coin(rng) != 0),
                         Lit(pick(rng), coin(rng) != 0),
                         Lit(pick(rng), coin(rng) != 0));
    }
    if (!solver.okay()) {
      break;
    }
    solver.solve();
    EXPECT_GE(solver.stats().conflicts, last_conflicts);
    last_conflicts = solver.stats().conflicts;
  }
}

}  // namespace
}  // namespace ftsp::sat
