#include "qec/weight_enumerator.hpp"

#include <stdexcept>

#include "f2/bit_matrix.hpp"
#include "f2/gauss.hpp"
#include "f2/span.hpp"

namespace ftsp::qec {

std::uint64_t WeightDistribution::total() const {
  std::uint64_t sum = 0;
  for (auto c : counts) {
    sum += c;
  }
  return sum;
}

std::size_t WeightDistribution::min_nonzero_weight() const {
  for (std::size_t w = 1; w < counts.size(); ++w) {
    if (counts[w] != 0) {
      return w;
    }
  }
  return 0;
}

namespace {

WeightDistribution distribution_of_span(const f2::BitMatrix& generators,
                                        std::size_t n) {
  const f2::RowSpan span(generators);
  WeightDistribution dist;
  dist.counts.assign(n + 1, 0);
  for (const auto& element : span.elements()) {
    ++dist.counts[element.popcount()];
  }
  return dist;
}

}  // namespace

WeightDistribution stabilizer_weight_distribution(const CssCode& code,
                                                  PauliType t) {
  return distribution_of_span(code.check_matrix(t), code.num_qubits());
}

WeightDistribution normalizer_weight_distribution(const CssCode& code,
                                                  PauliType t) {
  f2::BitMatrix generators = code.check_matrix(t);
  generators.append_rows(code.logicals(t));
  return distribution_of_span(generators, code.num_qubits());
}

std::size_t distance_from_enumerators(const CssCode& code, PauliType t) {
  const auto stabilizer = stabilizer_weight_distribution(code, t);
  const auto normalizer = normalizer_weight_distribution(code, t);
  for (std::size_t w = 1; w < normalizer.counts.size(); ++w) {
    if (normalizer.counts[w] > stabilizer.counts[w]) {
      return w;
    }
  }
  throw std::logic_error(
      "distance_from_enumerators: no logical element found");
}

}  // namespace ftsp::qec
