#include "compile/store.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "compile/format.hpp"
#include "core/synth_cache.hpp"
#include "util/binio.hpp"

namespace ftsp::compile {

namespace fs = std::filesystem;

namespace {

constexpr const char* kIndexName = "index.tsv";
constexpr const char* kSatCacheDir = "satcache";

std::string hash_name(const std::string& key, const char* extension) {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx%s",
                static_cast<unsigned long long>(core::cache_key_hash(key)),
                extension);
  return name;
}

/// satcache entry file: length-prefixed key (ByteWriter::str framing),
/// then the value bytes to EOF. The key is stored (not just its hash)
/// so collisions degrade to a miss, never to a wrong value. Written via
/// temp-file + rename so a concurrent reader sees either the old
/// complete entry or the new one, never a torn half-write.
void write_kv_file(const std::string& path, const std::string& key,
                   const std::string& value) {
  util::ByteWriter entry;
  entry.str(key);
  entry.raw(value);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return;  // Best effort: a failed write-through must not fail synthesis.
    }
    out.write(entry.bytes().data(),
              static_cast<std::streamsize>(entry.bytes().size()));
    if (!out) {
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);  // Best effort, atomic when it succeeds.
}

std::optional<std::string> read_kv_file(const std::string& path,
                                        const std::string& key) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream bytes;
  bytes << in.rdbuf();
  const std::string content = bytes.str();
  try {
    util::ByteReader reader(content);
    if (reader.str() != key) {
      return std::nullopt;  // Hash collision: treat as a miss.
    }
    return std::string(reader.raw(reader.remaining()));
  } catch (const std::out_of_range&) {
    return std::nullopt;  // Truncated/corrupt entry degrades to a miss.
  }
}

}  // namespace

ArtifactStore::ArtifactStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(fs::path(dir_) / kSatCacheDir, ec);
  if (ec) {
    throw ArtifactFormatError("store: cannot create " + dir_ + ": " +
                              ec.message());
  }
  load_index();
}

std::string ArtifactStore::artifact_path(const std::string& filename) const {
  return (fs::path(dir_) / filename).string();
}

void ArtifactStore::load_index() {
  std::ifstream in((fs::path(dir_) / kIndexName).string());
  if (!in) {
    return;  // Fresh store.
  }
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    const auto tab = line.find('\t');
    if (tab == std::string::npos || tab == 0 || tab + 1 >= line.size()) {
      throw ArtifactFormatError("store: malformed index line " +
                                std::to_string(line_number));
    }
    index_.emplace(line.substr(tab + 1), line.substr(0, tab));
  }
}

void ArtifactStore::save_index_locked() const {
  const std::string path = (fs::path(dir_) / kIndexName).string();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw ArtifactFormatError("store: cannot write index in " + dir_);
    }
    for (const auto& [key, filename] : index_) {
      out << filename << '\t' << key << '\n';
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw ArtifactFormatError("store: cannot replace index: " +
                              ec.message());
  }
}

void ArtifactStore::put(const ProtocolArtifact& artifact) {
  if (artifact.key.empty()) {
    throw ArtifactFormatError("store: artifact has an empty key");
  }
  const std::string filename = hash_name(artifact.key, ".ftsa");
  const std::string bytes = encode_artifact(artifact);
  // Temp-file + rename: concurrent readers (the documented-safe case)
  // see either the previous complete artifact or the new one, never a
  // truncated container.
  const std::string path = artifact_path(filename);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw ArtifactFormatError("store: cannot write " + filename);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      throw ArtifactFormatError("store: short write to " + filename);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw ArtifactFormatError("store: cannot replace " + filename + ": " +
                              ec.message());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  index_[artifact.key] = filename;
  save_index_locked();
}

std::optional<ProtocolArtifact> ArtifactStore::get(
    const std::string& key) const {
  std::string filename;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      return std::nullopt;
    }
    filename = it->second;
  }
  std::ifstream in(artifact_path(filename), std::ios::binary);
  if (!in) {
    throw ArtifactFormatError("store: indexed artifact missing: " +
                              filename);
  }
  std::ostringstream bytes;
  bytes << in.rdbuf();
  ProtocolArtifact artifact = decode_artifact(bytes.str());
  if (artifact.key != key) {
    throw ArtifactFormatError("store: key mismatch in " + filename);
  }
  return artifact;
}

bool ArtifactStore::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.count(key) != 0;
}

std::vector<std::string> ArtifactStore::keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(index_.size());
  for (const auto& [key, filename] : index_) {
    keys.push_back(key);
  }
  return keys;
}

std::size_t ArtifactStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

void ArtifactStore::attach_synth_cache() const {
  const std::string cache_dir = (fs::path(dir_) / kSatCacheDir).string();
  core::SynthCache::instance().set_backing(
      [cache_dir](const std::string& key) -> std::optional<std::string> {
        return read_kv_file(
            (fs::path(cache_dir) / hash_name(key, ".kv")).string(), key);
      },
      [cache_dir](const std::string& key, const std::string& value) {
        write_kv_file(
            (fs::path(cache_dir) / hash_name(key, ".kv")).string(), key,
            value);
      });
}

void ArtifactStore::detach_synth_cache() {
  core::SynthCache::instance().set_backing({}, {});
}

}  // namespace ftsp::compile
