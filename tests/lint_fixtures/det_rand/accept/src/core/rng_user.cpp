#include <random>
std::uint64_t draw(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return rng();
}
