#include <iostream>
void diag(const char* msg) { std::cout << msg << "\n"; }
