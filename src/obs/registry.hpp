#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace ftsp::obs {

/// Process-wide telemetry switch. Defaults to on; the environment
/// variable FTSP_OBS=off|0|false disables every counter, gauge,
/// histogram and trace span at the recording site (reads, renders and
/// the `metrics` op keep working — they just see frozen zeros).
/// `set_enabled` overrides the environment for tests and benches.
///
/// Telemetry is observation-only by construction: no recorded value
/// ever feeds back into synthesis, sampling, caching or response
/// rendering, so artifacts, cache keys and wire bytes are identical
/// whether it is on or off (gated by tests/test_obs.cpp and
/// bench/bench_obs_overhead.cpp).
bool enabled();
void set_enabled(bool on);
/// Drops any `set_enabled` override, returning to the environment.
void clear_enabled_override();

/// Monotonically increasing event count (requests served, conflicts
/// derived, bytes logged). Lock-free; relaxed ordering — telemetry
/// tolerates momentarily torn cross-counter views.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (store generation, portfolio winner index).
class Gauge {
 public:
  void set(std::int64_t v) {
    if (enabled()) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency histogram over microseconds: bucket i counts
/// values <= 2^i µs (i = 0..26, so 1 µs .. ~67 s), with a final
/// overflow bucket. All state is integer bucket counts plus an integer
/// sum, so percentiles derive exactly by a cumulative walk — no
/// floating-point accumulation, no drift, and a p50 can never exceed a
/// p99 computed from the same snapshot.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 28;

  void record(std::uint64_t value_us) {
    if (!enabled()) {
      return;
    }
    counts_[bucket_index(value_us)].fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(value_us, std::memory_order_relaxed);
  }

  std::uint64_t count() const;
  std::uint64_t sum_us() const {
    return sum_us_.load(std::memory_order_relaxed);
  }

  /// Exact-by-construction percentile: the upper bound of the bucket
  /// holding the rank-ceil(q * count) observation (0 when empty).
  /// Monotone in q for any fixed snapshot.
  std::uint64_t percentile_us(double q) const;

  /// Inclusive upper bound of bucket i in µs; the overflow bucket
  /// reports UINT64_MAX.
  static std::uint64_t bucket_upper_us(std::size_t i);
  static std::size_t bucket_index(std::uint64_t value_us);

  std::array<std::uint64_t, kBuckets> bucket_counts() const;

  void reset() {
    for (auto& bucket : counts_) {
      bucket.store(0, std::memory_order_relaxed);
    }
    sum_us_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> sum_us_{0};
};

/// RAII wall-clock timer: records the enclosing scope's duration into a
/// histogram in microseconds.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    histogram_.record(us > 0 ? static_cast<std::uint64_t>(us) : 0);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// The process-wide metric registry. Names follow the
/// `subsystem.verb.unit` convention (e.g. `sat.conflict.count`,
/// `serve.request.duration_us`) with an optional single label rendered
/// Prometheus-style (`serve.request.duration_us{op="sample"}`, built
/// with `labeled()`). Like the v2 error-code slugs, the name registry
/// is append-only: a published name never changes meaning or units —
/// see src/obs/README.md for the full table.
///
/// Registration (first call for a name) takes a mutex; the returned
/// reference is stable for the process lifetime, so hot paths register
/// once (function-local static) and increment lock-free thereafter.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  struct CounterRow {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeRow {
    std::string name;
    std::int64_t value;
  };
  struct HistogramRow {
    std::string name;
    std::array<std::uint64_t, Histogram::kBuckets> buckets;
    std::uint64_t count;
    std::uint64_t sum_us;
  };
  struct Snapshot {
    std::vector<CounterRow> counters;
    std::vector<GaugeRow> gauges;
    std::vector<HistogramRow> histograms;
  };

  /// Point-in-time copy of every registered metric, sorted by name.
  Snapshot snapshot() const;

  /// Zeroes every registered metric (names stay registered). Tests and
  /// benches only — a serving process never resets its telemetry.
  void reset_for_tests();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

/// `name{key="value"}` — one labeled series of a metric family.
std::string labeled(const std::string& name, const std::string& key,
                    const std::string& value);

}  // namespace ftsp::obs
