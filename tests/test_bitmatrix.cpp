#include "f2/bit_matrix.hpp"

#include <gtest/gtest.h>

namespace ftsp::f2 {
namespace {

TEST(BitMatrix, ZeroConstructed) {
  const BitMatrix m(3, 5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 5u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_TRUE(m.row(r).none());
  }
}

TEST(BitMatrix, FromStringsParsesRows) {
  const auto m = BitMatrix::from_strings({"101", "010"});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_FALSE(m.get(0, 1));
  EXPECT_TRUE(m.get(1, 1));
}

TEST(BitMatrix, FromStringsRejectsWidthMismatch) {
  EXPECT_THROW(BitMatrix::from_strings({"101", "01"}),
               std::invalid_argument);
}

TEST(BitMatrix, IdentityHasUnitRows) {
  const auto id = BitMatrix::identity(4);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(id.row(i).popcount(), 1u);
    EXPECT_TRUE(id.get(i, i));
  }
}

TEST(BitMatrix, AppendRowDefinesWidth) {
  BitMatrix m;
  m.append_row(BitVec::from_string("0110"));
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_THROW(m.append_row(BitVec(3)), std::invalid_argument);
}

TEST(BitMatrix, AppendRowsConcatenates) {
  auto a = BitMatrix::from_strings({"10", "01"});
  const auto b = BitMatrix::from_strings({"11"});
  a.append_rows(b);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.row(2).to_string(), "11");
}

TEST(BitMatrix, ColumnExtracts) {
  const auto m = BitMatrix::from_strings({"10", "11", "01"});
  EXPECT_EQ(m.column(0).to_string(), "110");
  EXPECT_EQ(m.column(1).to_string(), "011");
}

TEST(BitMatrix, TransposeSwapsShape) {
  const auto m = BitMatrix::from_strings({"101", "010"});
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(m.get(r, c), t.get(c, r));
    }
  }
}

TEST(BitMatrix, MultiplyVectorIsSyndromeMap) {
  const auto m = BitMatrix::from_strings({"110", "011"});
  EXPECT_EQ(m.multiply(BitVec::from_string("100")).to_string(), "10");
  EXPECT_EQ(m.multiply(BitVec::from_string("010")).to_string(), "11");
  EXPECT_EQ(m.multiply(BitVec::from_string("111")).to_string(), "00");
}

TEST(BitMatrix, MultiplyVectorChecksSize) {
  const auto m = BitMatrix::from_strings({"110"});
  EXPECT_THROW(m.multiply(BitVec(2)), std::invalid_argument);
}

TEST(BitMatrix, MultiplyMatrixMatchesManual) {
  const auto a = BitMatrix::from_strings({"11", "01"});
  const auto b = BitMatrix::from_strings({"10", "11"});
  const auto ab = a.multiply(b);
  // [1 1][1 0]   [0 1]
  // [0 1][1 1] = [1 1]
  EXPECT_EQ(ab.row(0).to_string(), "01");
  EXPECT_EQ(ab.row(1).to_string(), "11");
}

TEST(BitMatrix, MultiplyShapeMismatchThrows) {
  const auto a = BitMatrix::from_strings({"11"});
  const auto b = BitMatrix::from_strings({"10"});
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
}

TEST(BitMatrix, AddRowToXors) {
  auto m = BitMatrix::from_strings({"110", "011"});
  m.add_row_to(0, 1);
  EXPECT_EQ(m.row(1).to_string(), "101");
  EXPECT_EQ(m.row(0).to_string(), "110");
}

TEST(BitMatrix, SwapRows) {
  auto m = BitMatrix::from_strings({"10", "01"});
  m.swap_rows(0, 1);
  EXPECT_EQ(m.row(0).to_string(), "01");
  EXPECT_EQ(m.row(1).to_string(), "10");
}

TEST(BitMatrix, RemoveZeroRows) {
  auto m = BitMatrix::from_strings({"00", "01", "00", "11"});
  m.remove_zero_rows();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.row(0).to_string(), "01");
  EXPECT_EQ(m.row(1).to_string(), "11");
}

TEST(BitMatrix, EqualityIsStructural) {
  EXPECT_EQ(BitMatrix::from_strings({"10"}), BitMatrix::from_strings({"10"}));
  EXPECT_NE(BitMatrix::from_strings({"10"}), BitMatrix::from_strings({"01"}));
}

}  // namespace
}  // namespace ftsp::f2
