#include "sim/tableau.hpp"

#include <cassert>
#include <stdexcept>

#include "f2/bit_matrix.hpp"
#include "f2/gauss.hpp"

namespace ftsp::sim {

using circuit::Gate;
using circuit::GateKind;

Tableau::Tableau(std::size_t n) : n_(n) {
  x_.assign(2 * n, f2::BitVec(n));
  z_.assign(2 * n, f2::BitVec(n));
  sign_.assign(2 * n, false);
  for (std::size_t i = 0; i < n; ++i) {
    x_[i].set(i);       // Destabilizer i = X_i.
    z_[n + i].set(i);   // Stabilizer i = Z_i.
  }
}

int Tableau::phase_exponent(bool x1, bool z1, bool x2, bool z2) {
  // Exponent of i in the product of single-qubit Paulis (x1 z1) * (x2 z2),
  // as in Aaronson & Gottesman's g function.
  if (!x1 && !z1) {
    return 0;
  }
  if (x1 && z1) {  // Y
    return (z2 ? 1 : 0) - (x2 ? 1 : 0);
  }
  if (x1) {  // X
    return z2 ? (x2 ? 1 : -1) : 0;
  }
  // Z
  return x2 ? (z2 ? -1 : 1) : 0;
}

void Tableau::rowsum(std::size_t h, std::size_t i) {
  int phase = 0;
  for (std::size_t j = 0; j < n_; ++j) {
    phase += phase_exponent(x_[i].get(j), z_[i].get(j), x_[h].get(j),
                            z_[h].get(j));
  }
  phase += 2 * (sign_[h] ? 1 : 0) + 2 * (sign_[i] ? 1 : 0);
  phase &= 3;
  assert(phase == 0 || phase == 2);
  sign_[h] = (phase == 2);
  x_[h] ^= x_[i];
  z_[h] ^= z_[i];
}

void Tableau::apply_h(std::size_t q) {
  for (std::size_t i = 0; i < 2 * n_; ++i) {
    if (x_[i].get(q) && z_[i].get(q)) {
      sign_[i] = !sign_[i];
    }
    const bool had_x = x_[i].get(q);
    x_[i].set(q, z_[i].get(q));
    z_[i].set(q, had_x);
  }
}

void Tableau::apply_s(std::size_t q) {
  for (std::size_t i = 0; i < 2 * n_; ++i) {
    if (x_[i].get(q) && z_[i].get(q)) {
      sign_[i] = !sign_[i];
    }
    z_[i].set(q, z_[i].get(q) != x_[i].get(q));
  }
}

void Tableau::apply_cnot(std::size_t control, std::size_t target) {
  for (std::size_t i = 0; i < 2 * n_; ++i) {
    const bool xc = x_[i].get(control);
    const bool zc = z_[i].get(control);
    const bool xt = x_[i].get(target);
    const bool zt = z_[i].get(target);
    if (xc && zt && (xt == zc)) {
      sign_[i] = !sign_[i];
    }
    x_[i].set(target, xt != xc);
    z_[i].set(control, zc != zt);
  }
}

void Tableau::apply_x(std::size_t q) {
  for (std::size_t i = 0; i < 2 * n_; ++i) {
    if (z_[i].get(q)) {
      sign_[i] = !sign_[i];
    }
  }
}

void Tableau::apply_z(std::size_t q) {
  for (std::size_t i = 0; i < 2 * n_; ++i) {
    if (x_[i].get(q)) {
      sign_[i] = !sign_[i];
    }
  }
}

void Tableau::apply_y(std::size_t q) {
  apply_x(q);
  apply_z(q);
}

bool Tableau::z_is_deterministic(std::size_t q) const {
  for (std::size_t p = n_; p < 2 * n_; ++p) {
    if (x_[p].get(q)) {
      return false;
    }
  }
  return true;
}

bool Tableau::measure_z(std::size_t q, std::mt19937_64& rng) {
  std::size_t p = 2 * n_;
  for (std::size_t i = n_; i < 2 * n_; ++i) {
    if (x_[i].get(q)) {
      p = i;
      break;
    }
  }
  if (p < 2 * n_) {
    // Random outcome: Z_q anticommutes with stabilizer p.
    for (std::size_t i = 0; i < 2 * n_; ++i) {
      if (i != p && x_[i].get(q)) {
        rowsum(i, p);
      }
    }
    x_[p - n_] = x_[p];
    z_[p - n_] = z_[p];
    sign_[p - n_] = sign_[p];
    x_[p].clear();
    z_[p].clear();
    z_[p].set(q);
    const bool outcome = (rng() & 1) != 0;
    sign_[p] = outcome;
    return outcome;
  }
  // Deterministic outcome: accumulate the product of stabilizers whose
  // destabilizer partner anticommutes with Z_q into a scratch row.
  f2::BitVec scratch_x(n_);
  f2::BitVec scratch_z(n_);
  int phase = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (!x_[i].get(q)) {
      continue;
    }
    const std::size_t s = i + n_;
    for (std::size_t j = 0; j < n_; ++j) {
      phase += phase_exponent(x_[s].get(j), z_[s].get(j), scratch_x.get(j),
                              scratch_z.get(j));
    }
    phase += 2 * (sign_[s] ? 1 : 0);
    scratch_x ^= x_[s];
    scratch_z ^= z_[s];
  }
  phase &= 3;
  assert(phase == 0 || phase == 2);
  return phase == 2;
}

bool Tableau::measure_x(std::size_t q, std::mt19937_64& rng) {
  apply_h(q);
  const bool outcome = measure_z(q, rng);
  apply_h(q);
  return outcome;
}

void Tableau::prep_z(std::size_t q, std::mt19937_64& rng) {
  if (measure_z(q, rng)) {
    apply_x(q);
  }
}

void Tableau::prep_x(std::size_t q, std::mt19937_64& rng) {
  prep_z(q, rng);
  apply_h(q);
}

void Tableau::apply_gate(const Gate& gate, std::mt19937_64& rng,
                         std::vector<bool>& outcomes) {
  switch (gate.kind) {
    case GateKind::Cnot:
      apply_cnot(gate.q0, gate.q1);
      break;
    case GateKind::H:
      apply_h(gate.q0);
      break;
    case GateKind::PrepZ:
      prep_z(gate.q0, rng);
      break;
    case GateKind::PrepX:
      prep_x(gate.q0, rng);
      break;
    case GateKind::MeasZ:
    case GateKind::MeasX: {
      const bool outcome = gate.kind == GateKind::MeasZ
                               ? measure_z(gate.q0, rng)
                               : measure_x(gate.q0, rng);
      const auto bit = static_cast<std::size_t>(gate.cbit);
      if (outcomes.size() <= bit) {
        outcomes.resize(bit + 1, false);
      }
      outcomes[bit] = outcome;
      break;
    }
  }
}

std::vector<bool> Tableau::run(const circuit::Circuit& c,
                               std::mt19937_64& rng) {
  if (c.num_qubits() != n_) {
    throw std::invalid_argument("Tableau::run: qubit count mismatch");
  }
  std::vector<bool> outcomes(c.num_cbits(), false);
  for (const Gate& g : c.gates()) {
    apply_gate(g, rng, outcomes);
  }
  return outcomes;
}

bool Tableau::stabilizes(const qec::Pauli& p) const {
  assert(p.num_qubits() == n_);
  // Express p as a combination of the stabilizer rows over F2.
  f2::BitMatrix rows(n_, 2 * n_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      rows.set(i, j, x_[n_ + i].get(j));
      rows.set(i, n_ + j, z_[n_ + i].get(j));
    }
  }
  f2::BitVec target(2 * n_);
  for (std::size_t j = 0; j < n_; ++j) {
    target.set(j, p.x.get(j));
    target.set(n_ + j, p.z.get(j));
  }
  const auto combo = f2::express_in_rows(rows, target);
  if (!combo.has_value()) {
    return false;
  }
  // Multiply the selected stabilizers and compare the sign.
  f2::BitVec acc_x(n_);
  f2::BitVec acc_z(n_);
  int phase = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (!combo->get(i)) {
      continue;
    }
    const std::size_t s = i + n_;
    for (std::size_t j = 0; j < n_; ++j) {
      phase += phase_exponent(x_[s].get(j), z_[s].get(j), acc_x.get(j),
                              acc_z.get(j));
    }
    phase += 2 * (sign_[s] ? 1 : 0);
    acc_x ^= x_[s];
    acc_z ^= z_[s];
  }
  assert(acc_x == p.x && acc_z == p.z);
  return (phase & 3) == 0;
}

}  // namespace ftsp::sim
