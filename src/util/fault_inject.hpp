#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

/// Deterministic fault-injection harness.
///
/// Code under test declares *named injection sites* (`store.write`,
/// `serve.compute`, ...) at the points where real-world faults strike —
/// just before a write syscall, just after an accept, around a compute.
/// A plan in the `FTSP_FAULTS` environment variable (or installed by a
/// test via `set_plan`) arms some of those sites with actions:
///
///   FTSP_FAULTS="store.write:fail@3,serve.compute:delay=200ms@p0.1"
///
/// Grammar (comma-separated rules, first matching rule per site wins):
///
///   rule    := site ":" action [ "@" trigger ]
///   action  := "fail" | "delay=" <uint> "ms"
///   trigger := <uint>          fire exactly on the Nth hit (1-based)
///            | "p" <float>     fire with probability p per hit
///            | (absent)        fire on every hit
///
/// Probabilistic triggers draw from one process-wide PRNG seeded by
/// `FTSP_FAULTS_SEED` (default 1), so a chaos schedule replays
/// identically. Hit counters are per site and process-wide.
///
/// The same observation-only contract as `FTSP_OBS` applies: with no
/// plan installed, every site is a single relaxed atomic load — no
/// locks, no allocation, no behavior change. Malformed plans fail loud
/// at first use (std::runtime_error) rather than silently injecting
/// nothing.
namespace ftsp::util::fault {

/// Thrown by `maybe_throw` when a site's `fail` action fires. Callers
/// that want a custom error type use `should_fail` instead.
struct InjectedFault : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// What a site hit resolved to. `delay` has already been slept by the
/// time `hit` returns; it is reported for tests/logging only.
struct Action {
  bool fail = false;
  std::chrono::milliseconds delay{0};
};

/// True when a fault plan is installed (env or override). Sites do not
/// need to call this — `hit` self-gates — but cold-path code can use it
/// to skip setup work.
bool enabled();

/// Record one hit of `site`. Applies any armed delay (sleeps), then
/// reports whether a `fail` action fired. The caller decides what
/// "fail" means at its site (throw, errno, close, drop).
Action hit(const char* site);

/// Convenience: `hit(site).fail`.
bool should_fail(const char* site);

/// Convenience: throws InjectedFault("<what>: injected fault at <site>")
/// when the site's `fail` action fires.
void maybe_throw(const char* site, const char* what);

/// Test override: install a plan string (same grammar as FTSP_FAULTS),
/// replacing the environment plan. Resets all hit counters and reseeds
/// the PRNG. An empty string forces injection *off* (even when
/// FTSP_FAULTS is set — tests use this to isolate themselves from an
/// ambient chaos schedule). Throws std::runtime_error on a malformed
/// plan, leaving the previous plan armed.
void set_plan(const std::string& plan);

/// Reverts `set_plan` and resets counters; the environment plan (if
/// any) applies again.
void clear_plan();

/// Hits recorded against `site` so far (post-parse plans only; 0 when
/// disabled). For tests.
std::uint64_t hit_count(const char* site);

}  // namespace ftsp::util::fault
