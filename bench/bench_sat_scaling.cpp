// Ablation B: cost of the SAT synthesis itself (google-benchmark timings)
// — verification synthesis, correction synthesis and full protocol
// assembly per code, plus raw solver throughput on the embedded queries.
// The paper notes SAT methods provide optimality but "exhibit poor
// scalability"; this bench quantifies where the time goes.
//
// The BM_DepthSweep* family compares the synthesis engines on the
// depth/weight-bound sweep workload (the (u, v) optimum search):
//   SeedPath     — from-scratch re-encode per bound, sequential solver
//                  (the historical single-shot path).
//   Incremental  — skeleton encoded once, bounds swept via assumptions.
//   Parallel8    — incremental + 4-config portfolio raced on 8 threads
//                  (deterministic; thread count never changes results).
//   Cached       — incremental + synthesis cache, modeling repeated
//                  code-library / code_search runs (all iterations after
//                  the first are cache hits).
#include <benchmark/benchmark.h>

#include "core/protocol.hpp"
#include "core/synth_cache.hpp"
#include "core/verification.hpp"
#include "qec/code_library.hpp"
#include "qec/state_context.hpp"

namespace {

using namespace ftsp;

const char* kCodes[] = {"Steane", "Shor", "Surface_3", "[[11,1,3]]",
                        "Tetrahedral", "Hamming", "Carbon", "[[16,2,4]]",
                        "Tesseract"};

struct SweepInstance {
  f2::BitMatrix generators;
  std::vector<f2::BitVec> errors;
  std::string label;
};

SweepInstance sweep_instance(std::size_t code_index) {
  const auto code = qec::library_code_by_name(kCodes[code_index]);
  const qec::StateContext ctx(code, qec::LogicalBasis::Zero);
  const auto prep = core::synthesize_prep(ctx);
  const auto events =
      core::enumerate_single_fault_events(code.num_qubits(), {&prep});
  auto dangerous = core::dangerous_errors(ctx, qec::PauliType::X, events);
  return {ctx.detector_generators(qec::PauliType::X), std::move(dangerous),
          code.name()};
}

void run_depth_sweep(benchmark::State& state,
                     const core::VerificationSynthOptions& options) {
  const auto inst = sweep_instance(static_cast<std::size_t>(state.range(0)));
  if (inst.errors.empty()) {
    state.SkipWithError("no dangerous errors");
    return;
  }
  std::uint64_t conflicts = 0;
  for (auto _ : state) {
    sat::SweepTelemetry telemetry;
    auto per_iter = options;
    per_iter.telemetry = &telemetry;
    auto set = core::synthesize_verification(inst.generators, inst.errors,
                                             per_iter);
    benchmark::DoNotOptimize(set);
    conflicts += telemetry.total_conflicts();
  }
  state.counters["conflicts"] =
      benchmark::Counter(static_cast<double>(conflicts),
                         benchmark::Counter::kAvgIterations);
  state.SetLabel(inst.label);
}

void BM_DepthSweepSeedPath(benchmark::State& state) {
  core::VerificationSynthOptions options;
  options.engine.incremental = false;
  options.engine.use_cache = false;
  run_depth_sweep(state, options);
}
BENCHMARK(BM_DepthSweepSeedPath)
    ->DenseRange(0, 8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_DepthSweepIncremental(benchmark::State& state) {
  core::VerificationSynthOptions options;
  options.engine.incremental = true;
  options.engine.use_cache = false;
  run_depth_sweep(state, options);
}
BENCHMARK(BM_DepthSweepIncremental)
    ->DenseRange(0, 8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_DepthSweepParallel8(benchmark::State& state) {
  core::VerificationSynthOptions options;
  options.engine.incremental = true;
  options.engine.use_cache = false;
  options.engine.num_configs = 4;
  options.engine.num_threads = 8;
  options.engine.seed = 1;
  run_depth_sweep(state, options);
}
BENCHMARK(BM_DepthSweepParallel8)
    ->DenseRange(0, 8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_DepthSweepCached(benchmark::State& state) {
  core::SynthCache::instance().clear();
  core::VerificationSynthOptions options;
  options.engine.incremental = true;
  options.engine.use_cache = true;
  run_depth_sweep(state, options);
}
BENCHMARK(BM_DepthSweepCached)
    ->DenseRange(0, 8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(8);

void BM_VerificationSynthesis(benchmark::State& state) {
  const auto code = qec::library_code_by_name(
      kCodes[static_cast<std::size_t>(state.range(0))]);
  const qec::StateContext ctx(code, qec::LogicalBasis::Zero);
  const auto prep = core::synthesize_prep(ctx);
  const auto events =
      core::enumerate_single_fault_events(code.num_qubits(), {&prep});
  const auto dangerous =
      core::dangerous_errors(ctx, qec::PauliType::X, events);
  // Cache disabled so every iteration measures synthesis, not a memo hit
  // (other benchmarks in this process populate the cache).
  core::VerificationSynthOptions options;
  options.engine.use_cache = false;
  for (auto _ : state) {
    auto set = core::synthesize_verification(
        ctx.detector_generators(qec::PauliType::X), dangerous, options);
    benchmark::DoNotOptimize(set);
  }
  state.SetLabel(code.name() + " (" + std::to_string(dangerous.size()) +
                 " dangerous errors)");
}
BENCHMARK(BM_VerificationSynthesis)
    ->DenseRange(0, 8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_FullProtocolSynthesis(benchmark::State& state) {
  const auto code = qec::library_code_by_name(
      kCodes[static_cast<std::size_t>(state.range(0))]);
  core::SynthesisOptions options;
  options.prep.engine.use_cache = false;
  options.verification.engine.use_cache = false;
  options.correction.engine.use_cache = false;
  for (auto _ : state) {
    auto protocol =
        core::synthesize_protocol(code, qec::LogicalBasis::Zero, options);
    benchmark::DoNotOptimize(protocol);
  }
  state.SetLabel(code.name());
}
BENCHMARK(BM_FullProtocolSynthesis)
    ->DenseRange(0, 8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void BM_FaultEnumeration(benchmark::State& state) {
  const auto code = qec::library_code_by_name(
      kCodes[static_cast<std::size_t>(state.range(0))]);
  const qec::StateContext ctx(code, qec::LogicalBasis::Zero);
  const auto prep = core::synthesize_prep(ctx);
  for (auto _ : state) {
    auto events =
        core::enumerate_single_fault_events(code.num_qubits(), {&prep});
    benchmark::DoNotOptimize(events);
  }
  state.SetLabel(code.name());
}
BENCHMARK(BM_FaultEnumeration)
    ->DenseRange(0, 8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

}  // namespace

BENCHMARK_MAIN();
