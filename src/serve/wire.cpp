#include "serve/wire.hpp"

#include <cmath>

namespace ftsp::serve {

void parse_envelope(const compile::JsonObject& request, Envelope& envelope) {
  if (const auto it = request.find("id"); it != request.end()) {
    // Echo verbatim: numbers/bools/null keep their source token,
    // strings are re-quoted.
    if (it->second.kind == compile::JsonValue::Kind::String) {
      envelope.id.push_back('"');
      envelope.id.append(compile::json_escape(it->second.text));
      envelope.id.push_back('"');
    } else {
      envelope.id = it->second.text;
    }
  }
  if (const auto it = request.find("v"); it != request.end()) {
    if (it->second.kind != compile::JsonValue::Kind::Number ||
        (it->second.number != 1.0 && it->second.number != 2.0)) {
      throw ServiceError(error_code::kBadRequest,
                         "unsupported protocol version '" + it->second.text +
                             "' (1|2)");
    }
    envelope.version = static_cast<int>(it->second.number);
  }
}

namespace {

/// v2 responses lead with "v":2,"ok":<...> so a reader can dispatch on
/// the first bytes; the id follows (when present), then the payload.
/// v1 keeps the historical id-first order — those bytes are frozen.
std::string envelope_prefix(const Envelope& envelope, bool ok) {
  std::string out = "{";
  if (envelope.version >= 2) {
    out += "\"v\":2,\"ok\":";
    out += ok ? "true" : "false";
    if (!envelope.id.empty()) {
      out += ",\"id\":";
      out += envelope.id;
    }
  } else {
    if (!envelope.id.empty()) {
      out += "\"id\":";
      out += envelope.id;
      out += ',';
    }
    out += "\"ok\":";
    out += ok ? "true" : "false";
  }
  return out;
}

}  // namespace

std::string render_ok(const Envelope& envelope, const std::string& payload) {
  std::string out = envelope_prefix(envelope, /*ok=*/true);
  if (!payload.empty()) {
    out += ',';
    out += payload;
  }
  out += '}';
  return out;
}

std::string render_error(const Envelope& envelope, const std::string& code,
                         const std::string& message) {
  std::string out = envelope_prefix(envelope, /*ok=*/false);
  out += ",\"error\":";
  if (envelope.version >= 2) {
    out += "{\"code\":\"";
    out += compile::json_escape(code);
    out += "\",\"message\":\"";
    out += compile::json_escape(message);
    out += "\"}";
  } else {
    out += '"';
    out += compile::json_escape(message);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace ftsp::serve
