#include "core/serialize.hpp"

#include <bit>
#include <sstream>
#include <stdexcept>

#include "qec/code_io.hpp"

namespace ftsp::core {

using f2::BitVec;
using qec::PauliType;

namespace {

constexpr const char* kHeader = "ftsp-protocol v1";

/// Per-ancilla data-CNOT partner sequences of an (unflagged) branch
/// circuit — the gadget CNOT orders, recovered from the stored gates so
/// the text format can persist them. Ancilla i serves measurement i.
std::vector<std::vector<std::size_t>> branch_gadget_orders(
    const circuit::Circuit& circ, std::size_t num_data) {
  std::vector<std::vector<std::size_t>> orders;
  for (const auto& gate : circ.gates()) {
    if (gate.kind != circuit::GateKind::Cnot) {
      continue;
    }
    const bool data0 = gate.q0 < num_data;
    const bool data1 = gate.q1 < num_data;
    if (data0 == data1) {
      continue;
    }
    const std::size_t ancilla = (data0 ? gate.q1 : gate.q0) - num_data;
    if (orders.size() <= ancilla) {
      orders.resize(ancilla + 1);
    }
    orders[ancilla].push_back(data0 ? gate.q0 : gate.q1);
  }
  return orders;
}

void write_layer(std::ostringstream& out, const CompiledLayer& layer,
                 int index) {
  out << "layer-begin " << index << '\n';
  out << "type: " << name(layer.error_type) << '\n';
  for (const auto& gadget : layer.gadgets) {
    out << "gadget: flagged " << (gadget.flagged ? 1 : 0) << " order";
    for (std::size_t q : gadget.order) {
      out << ' ' << q;
    }
    out << '\n';
  }
  for (const auto& [key, branch] : layer.branches) {
    out << "branch-begin " << key.to_string() << '\n';
    out << "hook: " << (branch.is_hook_branch ? 1 : 0) << '\n';
    out << "corrected: " << name(branch.corrected_type) << '\n';
    // Persist non-ascending CNOT orders (coupling-aware walks) so the
    // reloaded branch circuit is gate-for-gate identical; the default
    // ascending order is omitted, keeping unconstrained saves (and
    // files written by older builds) byte-identical.
    const auto orders = branch.plan.measurements.empty()
                            ? std::vector<std::vector<std::size_t>>{}
                            : branch_gadget_orders(
                                  branch.circ,
                                  branch.plan.measurements.front().size());
    for (std::size_t i = 0; i < branch.plan.measurements.size(); ++i) {
      const auto& m = branch.plan.measurements[i];
      out << "measurement: " << m.to_string();
      if (i < orders.size() && orders[i] != m.ones()) {
        out << " order";
        for (std::size_t q : orders[i]) {
          out << ' ' << q;
        }
      }
      out << '\n';
    }
    for (const auto& [pattern, recovery] : branch.plan.recoveries) {
      out << "recovery: " << pattern.to_string() << " -> "
          << recovery.to_string() << '\n';
    }
    out << "branch-end\n";
  }
  out << "layer-end\n";
}

PauliType parse_type(const std::string& token) {
  if (token == "X") {
    return PauliType::X;
  }
  if (token == "Z") {
    return PauliType::Z;
  }
  throw std::invalid_argument("load_protocol: bad Pauli type " + token);
}

}  // namespace

std::string save_protocol(const Protocol& protocol) {
  std::ostringstream out;
  out << kHeader << '\n';
  out << "basis: "
      << (protocol.basis == qec::LogicalBasis::Zero ? "Zero" : "Plus")
      << '\n';
  out << "code-begin\n" << qec::write_css_code(*protocol.code)
      << "code-end\n";
  out << "prep-begin\n" << protocol.prep.to_text() << "prep-end\n";
  if (protocol.layer1.has_value()) {
    write_layer(out, *protocol.layer1, 1);
  }
  if (protocol.layer2.has_value()) {
    write_layer(out, *protocol.layer2, 2);
  }
  return out.str();
}

namespace {

// Binary codec framing.
constexpr std::uint32_t kBinaryMagic = 0x42505446u;  // "FTPB" little-endian.
constexpr std::uint16_t kBinaryVersion = 1;

void encode_matrix(util::ByteWriter& out, const f2::BitMatrix& m) {
  out.u32(static_cast<std::uint32_t>(m.rows()));
  out.u32(static_cast<std::uint32_t>(m.cols()));
  for (std::size_t r = 0; r < m.rows(); ++r) {
    encode_bitvec(out, m.row(r));
  }
}

f2::BitMatrix decode_matrix(util::ByteReader& in) {
  const std::uint32_t rows = in.u32();
  const std::uint32_t cols = in.u32();
  // Built row by row (not pre-allocated from the header counts): a
  // crafted rows/cols pair cannot force a large allocation — decoding
  // simply runs out of bytes and throws.
  f2::BitMatrix m;
  for (std::uint32_t r = 0; r < rows; ++r) {
    f2::BitVec row = decode_bitvec(in);
    if (row.size() != cols) {
      throw std::invalid_argument("decode_matrix: row width mismatch");
    }
    m.append_row(std::move(row));
  }
  if (m.empty() && cols != 0) {
    throw std::invalid_argument("decode_matrix: zero rows");
  }
  return m;
}

PauliType decode_pauli_type(util::ByteReader& in) {
  const std::uint8_t raw = in.u8();
  if (raw > 1) {
    throw std::invalid_argument("load_protocol_binary: bad Pauli type");
  }
  return raw == 0 ? PauliType::X : PauliType::Z;
}

void encode_pauli_type(util::ByteWriter& out, PauliType t) {
  out.u8(t == PauliType::X ? 0 : 1);
}

void encode_layer_binary(util::ByteWriter& out, const CompiledLayer& layer) {
  encode_pauli_type(out, layer.error_type);
  encode_circuit(out, layer.verif);
  encode_bitvec(out, layer.flag_mask);
  out.u32(static_cast<std::uint32_t>(layer.gadgets.size()));
  for (const auto& g : layer.gadgets) {
    encode_pauli_type(out, g.stabilizer_type);
    encode_bitvec(out, g.support);
    out.u32(static_cast<std::uint32_t>(g.order.size()));
    for (std::size_t q : g.order) {
      out.u32(static_cast<std::uint32_t>(q));
    }
    out.u8(g.flagged ? 1 : 0);
    out.u32(static_cast<std::uint32_t>(g.ancilla));
    out.u32(static_cast<std::uint32_t>(g.flag_qubit));
    out.u32(static_cast<std::uint32_t>(g.outcome_bit));
    out.u32(static_cast<std::uint32_t>(g.flag_bit));
  }
  out.u32(static_cast<std::uint32_t>(layer.verification.stabilizers.size()));
  for (const auto& s : layer.verification.stabilizers) {
    encode_bitvec(out, s);
  }
  out.u32(static_cast<std::uint32_t>(layer.branches.size()));
  for (const auto& [key, branch] : layer.branches) {
    encode_bitvec(out, key);
    encode_pauli_type(out, branch.corrected_type);
    out.u8(branch.is_hook_branch ? 1 : 0);
    encode_circuit(out, branch.circ);
    out.u32(static_cast<std::uint32_t>(branch.plan.measurements.size()));
    for (const auto& m : branch.plan.measurements) {
      encode_bitvec(out, m);
    }
    out.u32(static_cast<std::uint32_t>(branch.plan.recoveries.size()));
    for (const auto& [pattern, recovery] : branch.plan.recoveries) {
      encode_bitvec(out, pattern);
      encode_bitvec(out, recovery);
    }
  }
}

CompiledLayer decode_layer_binary(util::ByteReader& in) {
  CompiledLayer layer;
  layer.error_type = decode_pauli_type(in);
  layer.verif = decode_circuit(in);
  layer.flag_mask = decode_bitvec(in);
  const std::uint32_t gadgets = in.u32();
  for (std::uint32_t g = 0; g < gadgets; ++g) {
    circuit::GadgetLayout gadget;
    gadget.stabilizer_type = decode_pauli_type(in);
    gadget.support = decode_bitvec(in);
    const std::uint32_t order = in.u32();
    for (std::uint32_t i = 0; i < order; ++i) {
      gadget.order.push_back(in.u32());
    }
    gadget.flagged = in.u8() != 0;
    gadget.ancilla = in.u32();
    gadget.flag_qubit = in.u32();
    gadget.outcome_bit = static_cast<int>(in.u32());
    gadget.flag_bit = static_cast<int>(in.u32());
    layer.gadgets.push_back(std::move(gadget));
  }
  const std::uint32_t stabilizers = in.u32();
  for (std::uint32_t i = 0; i < stabilizers; ++i) {
    layer.verification.stabilizers.push_back(decode_bitvec(in));
  }
  const std::uint32_t branches = in.u32();
  for (std::uint32_t b = 0; b < branches; ++b) {
    BitVec key = decode_bitvec(in);
    CompiledBranch branch;
    branch.corrected_type = decode_pauli_type(in);
    branch.is_hook_branch = in.u8() != 0;
    branch.circ = decode_circuit(in);
    const std::uint32_t measurements = in.u32();
    for (std::uint32_t m = 0; m < measurements; ++m) {
      branch.plan.measurements.push_back(decode_bitvec(in));
    }
    const std::uint32_t recoveries = in.u32();
    for (std::uint32_t r = 0; r < recoveries; ++r) {
      BitVec pattern = decode_bitvec(in);
      BitVec recovery = decode_bitvec(in);
      branch.plan.recoveries.emplace(std::move(pattern), std::move(recovery));
    }
    layer.branches.emplace(std::move(key), std::move(branch));
  }
  return layer;
}

}  // namespace

void encode_bitvec(util::ByteWriter& out, const f2::BitVec& v) {
  out.u32(static_cast<std::uint32_t>(v.size()));
  for (std::size_t i = 0; i < v.size(); i += 8) {
    std::uint8_t byte = 0;
    for (std::size_t b = 0; b < 8 && i + b < v.size(); ++b) {
      byte |= static_cast<std::uint8_t>(v.get(i + b)) << b;
    }
    out.u8(byte);
  }
}

f2::BitVec decode_bitvec(util::ByteReader& in) {
  const std::uint32_t size = in.u32();
  // The payload must hold ceil(size/8) bytes; checking before the
  // BitVec allocation keeps a crafted length from forcing a huge
  // allocation ahead of the truncation error.
  if (std::size_t{size} / 8 > in.remaining()) {
    throw std::invalid_argument("decode_bitvec: truncated payload");
  }
  f2::BitVec v(size);
  for (std::uint32_t i = 0; i < size; i += 8) {
    const std::uint8_t byte = in.u8();
    for (std::uint32_t b = 0; b < 8 && i + b < size; ++b) {
      if ((byte >> b) & 1) {
        v.set(i + b);
      }
    }
  }
  return v;
}

void encode_circuit(util::ByteWriter& out, const circuit::Circuit& c) {
  out.u32(static_cast<std::uint32_t>(c.num_qubits()));
  out.u32(static_cast<std::uint32_t>(c.num_cbits()));
  out.u32(static_cast<std::uint32_t>(c.gates().size()));
  for (const auto& g : c.gates()) {
    out.u8(static_cast<std::uint8_t>(g.kind));
    out.u32(static_cast<std::uint32_t>(g.q0));
    out.u32(static_cast<std::uint32_t>(g.q1));
    out.u32(static_cast<std::uint32_t>(g.cbit));
  }
}

circuit::Circuit decode_circuit(util::ByteReader& in) {
  const std::uint32_t num_qubits = in.u32();
  const std::uint32_t num_cbits = in.u32();
  const std::uint32_t num_gates = in.u32();
  circuit::Circuit c(num_qubits);
  for (std::uint32_t i = 0; i < num_gates; ++i) {
    const std::uint8_t kind = in.u8();
    const std::uint32_t q0 = in.u32();
    const std::uint32_t q1 = in.u32();
    const int cbit = static_cast<int>(in.u32());
    int allocated = -1;
    switch (static_cast<circuit::GateKind>(kind)) {
      case circuit::GateKind::Cnot:
        c.cnot(q0, q1);
        break;
      case circuit::GateKind::H:
        c.h(q0);
        break;
      case circuit::GateKind::PrepZ:
        c.prep_z(q0);
        break;
      case circuit::GateKind::PrepX:
        c.prep_x(q0);
        break;
      case circuit::GateKind::MeasZ:
        allocated = c.measure_z(q0);
        break;
      case circuit::GateKind::MeasX:
        allocated = c.measure_x(q0);
        break;
      default:
        throw std::invalid_argument("decode_circuit: unknown gate kind");
    }
    if (allocated != cbit && allocated != -1) {
      throw std::invalid_argument(
          "decode_circuit: classical bits out of allocation order");
    }
  }
  if (c.num_cbits() != num_cbits) {
    throw std::invalid_argument("decode_circuit: classical bit count");
  }
  return c;
}

namespace {

/// Version marker of the sparse decoder-table encoding. The legacy
/// (dense) payload opens with the Pauli type byte, which is 0 or 1 —
/// so this single leading byte cleanly disambiguates the two framings
/// and pre-v2 artifacts keep loading byte-for-byte unchanged.
constexpr std::uint8_t kSparseTableVersion = 2;
/// Per-entry tag: 0..254 = number of set-bit indices following;
/// 255 = dense fallback (ceil(width/8) raw bytes).
constexpr std::uint8_t kDenseEntryTag = 255;

std::vector<f2::BitVec> decode_decoder_table_dense(util::ByteReader& in) {
  const std::uint32_t syndrome_bits = in.u32();
  const std::size_t count = std::size_t{1} << syndrome_bits;
  // Each entry takes at least its 4-byte length prefix; reject counts
  // the payload cannot possibly hold before reserving anything.
  if (syndrome_bits > 20 || count > in.remaining() / 4) {
    throw std::invalid_argument("decode_decoder_table: syndrome space");
  }
  std::vector<f2::BitVec> table;
  table.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    table.push_back(decode_bitvec(in));
  }
  return table;
}

}  // namespace

void encode_decoder_table(util::ByteWriter& out, qec::PauliType type,
                          const std::vector<f2::BitVec>& table) {
  // Sparse v2 framing: lookup-table entries are minimum-weight
  // corrections — near-empty bitvecs — so each entry stores its set-bit
  // indices, with the (shared) bit width hoisted into the header
  // instead of repeated per entry. Entries that would not shrink fall
  // back to dense bytes per entry, so the encoding never loses.
  out.u8(kSparseTableVersion);
  encode_pauli_type(out, type);
  out.u32(static_cast<std::uint32_t>(std::countr_zero(table.size())));
  const std::uint32_t width =
      table.empty() ? 0 : static_cast<std::uint32_t>(table.front().size());
  out.u32(width);
  const std::size_t dense_bytes = (width + 7) / 8;
  const std::size_t index_bytes = width <= 256 ? 1 : 2;
  for (const auto& entry : table) {
    if (entry.size() != width) {
      throw std::invalid_argument(
          "encode_decoder_table: ragged entry widths");
    }
    const std::vector<std::size_t> ones = entry.ones();
    if (ones.size() < kDenseEntryTag &&
        ones.size() * index_bytes < dense_bytes && width <= 65536) {
      out.u8(static_cast<std::uint8_t>(ones.size()));
      for (std::size_t index : ones) {
        if (index_bytes == 1) {
          out.u8(static_cast<std::uint8_t>(index));
        } else {
          out.u16(static_cast<std::uint16_t>(index));
        }
      }
    } else {
      out.u8(kDenseEntryTag);
      for (std::size_t i = 0; i < width; i += 8) {
        std::uint8_t byte = 0;
        for (std::size_t b = 0; b < 8 && i + b < width; ++b) {
          byte |= static_cast<std::uint8_t>(entry.get(i + b)) << b;
        }
        out.u8(byte);
      }
    }
  }
}

std::vector<f2::BitVec> decode_decoder_table(util::ByteReader& in) {
  const std::uint8_t lead = in.u8();
  if (lead <= 1) {
    // Legacy dense payload: the lead byte *is* the Pauli type.
    return decode_decoder_table_dense(in);
  }
  if (lead != kSparseTableVersion) {
    throw std::invalid_argument("decode_decoder_table: unknown version " +
                                std::to_string(lead));
  }
  (void)decode_pauli_type(in);
  const std::uint32_t syndrome_bits = in.u32();
  const std::size_t count = std::size_t{1} << syndrome_bits;
  // Every entry takes at least its 1-byte tag.
  if (syndrome_bits > 20 || count > in.remaining()) {
    throw std::invalid_argument("decode_decoder_table: syndrome space");
  }
  const std::uint32_t width = in.u32();
  const std::size_t index_bytes = width <= 256 ? 1 : 2;
  std::vector<f2::BitVec> table;
  table.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    f2::BitVec entry(width);
    const std::uint8_t tag = in.u8();
    if (tag == kDenseEntryTag) {
      for (std::uint32_t i = 0; i < width; i += 8) {
        const std::uint8_t byte = in.u8();
        for (std::uint32_t b = 0; b < 8 && i + b < width; ++b) {
          if ((byte >> b) & 1) {
            entry.set(i + b);
          }
        }
      }
    } else {
      std::size_t previous = 0;
      for (std::uint8_t i = 0; i < tag; ++i) {
        const std::size_t index = index_bytes == 1 ? in.u8() : in.u16();
        // Strictly ascending (the encoder writes `ones()` order): any
        // other shape is corruption, not a repairable quirk.
        if (index >= width || (i > 0 && index <= previous)) {
          throw std::invalid_argument(
              "decode_decoder_table: bad sparse index");
        }
        previous = index;
        entry.set(index);
      }
    }
    table.push_back(std::move(entry));
  }
  return table;
}

std::string save_protocol_binary(const Protocol& protocol) {
  util::ByteWriter out;
  out.u32(kBinaryMagic);
  out.u16(kBinaryVersion);
  out.u8(protocol.basis == qec::LogicalBasis::Zero ? 0 : 1);
  out.str(protocol.code->name());
  encode_matrix(out, protocol.code->hx());
  encode_matrix(out, protocol.code->hz());
  encode_circuit(out, protocol.prep);
  out.u8(static_cast<std::uint8_t>(
      (protocol.layer1.has_value() ? 1 : 0) |
      (protocol.layer2.has_value() ? 2 : 0)));
  if (protocol.layer1.has_value()) {
    encode_layer_binary(out, *protocol.layer1);
  }
  if (protocol.layer2.has_value()) {
    encode_layer_binary(out, *protocol.layer2);
  }
  return out.take();
}

Protocol load_protocol_binary(std::string_view bytes) {
  util::ByteReader in(bytes);
  if (in.u32() != kBinaryMagic) {
    throw std::invalid_argument("load_protocol_binary: bad magic");
  }
  if (in.u16() != kBinaryVersion) {
    throw std::invalid_argument("load_protocol_binary: unsupported version");
  }
  Protocol protocol;
  protocol.basis =
      in.u8() == 0 ? qec::LogicalBasis::Zero : qec::LogicalBasis::Plus;
  std::string name = in.str();
  f2::BitMatrix hx = decode_matrix(in);
  f2::BitMatrix hz = decode_matrix(in);
  protocol.code = std::make_shared<const qec::CssCode>(
      std::move(name), std::move(hx), std::move(hz));
  protocol.state = std::make_shared<const qec::StateContext>(
      *protocol.code, protocol.basis);
  protocol.prep = decode_circuit(in);
  const std::uint8_t layers = in.u8();
  if (layers & 1) {
    protocol.layer1 = decode_layer_binary(in);
  }
  if (layers & 2) {
    protocol.layer2 = decode_layer_binary(in);
  }
  if (!in.done()) {
    throw std::invalid_argument("load_protocol_binary: trailing bytes");
  }
  return protocol;
}

Protocol load_protocol(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    throw std::invalid_argument("load_protocol: missing header");
  }

  Protocol protocol;
  std::string basis_line;
  if (!std::getline(in, basis_line) || basis_line.rfind("basis: ", 0) != 0) {
    throw std::invalid_argument("load_protocol: missing basis");
  }
  protocol.basis = basis_line.substr(7) == "Zero"
                       ? qec::LogicalBasis::Zero
                       : qec::LogicalBasis::Plus;

  // Code block.
  if (!std::getline(in, line) || line != "code-begin") {
    throw std::invalid_argument("load_protocol: missing code block");
  }
  std::ostringstream code_text;
  while (std::getline(in, line) && line != "code-end") {
    code_text << line << '\n';
  }
  protocol.code = std::make_shared<const qec::CssCode>(
      qec::parse_css_code(code_text.str()));
  protocol.state = std::make_shared<const qec::StateContext>(
      *protocol.code, protocol.basis);
  const std::size_t n = protocol.code->num_qubits();

  // Preparation block.
  if (!std::getline(in, line) || line != "prep-begin") {
    throw std::invalid_argument("load_protocol: missing prep block");
  }
  std::ostringstream prep_text;
  while (std::getline(in, line) && line != "prep-end") {
    prep_text << line << '\n';
  }
  protocol.prep = circuit::Circuit::from_text(prep_text.str(), n);

  // Layers.
  while (std::getline(in, line)) {
    if (line.rfind("layer-begin ", 0) != 0) {
      if (line.empty()) {
        continue;
      }
      throw std::invalid_argument("load_protocol: unexpected line " + line);
    }
    const int index = std::stoi(line.substr(12));
    CompiledLayer layer;
    layer.verif = circuit::Circuit(n);

    if (!std::getline(in, line) || line.rfind("type: ", 0) != 0) {
      throw std::invalid_argument("load_protocol: missing layer type");
    }
    layer.error_type = parse_type(line.substr(6));
    const PauliType measured = other(layer.error_type);

    while (std::getline(in, line) && line != "layer-end") {
      if (line.rfind("gadget: flagged ", 0) == 0) {
        std::istringstream tokens(line.substr(16));
        int flagged = 0;
        std::string order_word;
        tokens >> flagged >> order_word;
        std::vector<std::size_t> order;
        std::size_t q = 0;
        while (tokens >> q) {
          order.push_back(q);
        }
        BitVec support(n);
        for (std::size_t qq : order) {
          support.set(qq);
        }
        layer.verification.stabilizers.push_back(support);
        layer.gadgets.push_back(circuit::append_stabilizer_measurement(
            layer.verif, support, measured, flagged != 0, order));
      } else if (line.rfind("branch-begin ", 0) == 0) {
        const BitVec key = BitVec::from_string(line.substr(13));
        CompiledBranch branch;
        std::vector<std::vector<std::size_t>> branch_orders;
        while (std::getline(in, line) && line != "branch-end") {
          if (line.rfind("hook: ", 0) == 0) {
            branch.is_hook_branch = line.substr(6) == "1";
          } else if (line.rfind("corrected: ", 0) == 0) {
            branch.corrected_type = parse_type(line.substr(11));
          } else if (line.rfind("measurement: ", 0) == 0) {
            std::string rest = line.substr(13);
            std::vector<std::size_t> order;
            if (const auto marker = rest.find(" order");
                marker != std::string::npos) {
              std::istringstream tokens(rest.substr(marker + 6));
              std::size_t q = 0;
              while (tokens >> q) {
                order.push_back(q);
              }
              rest.resize(marker);
            }
            branch.plan.measurements.push_back(BitVec::from_string(rest));
            branch_orders.push_back(std::move(order));
          } else if (line.rfind("recovery: ", 0) == 0) {
            const std::string rest = line.substr(10);
            const auto arrow = rest.find(" -> ");
            if (arrow == std::string::npos) {
              throw std::invalid_argument(
                  "load_protocol: malformed recovery line");
            }
            branch.plan.recoveries.emplace(
                BitVec::from_string(rest.substr(0, arrow)),
                BitVec::from_string(rest.substr(arrow + 4)));
          } else {
            throw std::invalid_argument(
                "load_protocol: unexpected branch line " + line);
          }
        }
        branch.circ = circuit::Circuit(n);
        for (std::size_t i = 0; i < branch.plan.measurements.size(); ++i) {
          circuit::append_stabilizer_measurement(
              branch.circ, branch.plan.measurements[i],
              other(branch.corrected_type),
              /*flagged=*/false, branch_orders[i]);
        }
        layer.branches.emplace(key, std::move(branch));
      } else if (!line.empty()) {
        throw std::invalid_argument("load_protocol: unexpected layer line " +
                                    line);
      }
    }

    layer.flag_mask = BitVec(layer.verif.num_cbits());
    for (const auto& gadget : layer.gadgets) {
      if (gadget.flagged) {
        layer.flag_mask.set(static_cast<std::size_t>(gadget.flag_bit));
      }
    }
    if (index == 1) {
      protocol.layer1 = std::move(layer);
    } else if (index == 2) {
      protocol.layer2 = std::move(layer);
    } else {
      throw std::invalid_argument("load_protocol: bad layer index");
    }
  }
  return protocol;
}

}  // namespace ftsp::core
