// Regenerates Fig. 4 of the paper: logical error rate p_L vs physical
// error rate p for the deterministic FT |0>_L preparation of all nine
// codes under E1_1 circuit-level depolarizing noise.
//
// Like the paper we sample at a high error rate (8000 shots at q = 0.1)
// and extrapolate downward — here with a second stratum at q = 0.02 and
// multiple-importance re-weighting instead of Qsample's dynamic subset
// sampling (see DESIGN.md). The "Linear" reference p_L = p corresponds to
// an unencoded qubit. Expected shape: every curve scales as O(p^2).
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/executor.hpp"
#include "core/protocol.hpp"
#include "core/samplers.hpp"
#include "decoder/lookup_decoder.hpp"
#include "qec/code_library.hpp"

namespace {

using namespace ftsp;

constexpr std::size_t kShotsPerStratum = 8000;

const double kGrid[] = {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1};

/// Times the two sampling strata on one protocol with both engines; the
/// whole figure is sampled with the batched one.
void compare_engines(const core::Executor& executor,
                     const decoder::PerfectDecoder& decoder,
                     const std::string& name) {
  const auto time_strata = [&](auto&& sample) {
    const auto start = std::chrono::steady_clock::now();
    const auto a = sample(0.1, std::uint64_t{0xF16'4'0001ULL});
    const auto b = sample(0.02, std::uint64_t{0xF16'4'0002ULL});
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    // Consume so the work cannot be elided.
    return std::pair<double, double>{
        elapsed, core::estimate_logical_rate({a, b}, 0.01).mean};
  };
  const auto [scalar_s, scalar_pl] = time_strata([&](double q,
                                                     std::uint64_t seed) {
    return core::sample_protocol_batch_scalar(executor, decoder, q,
                                              kShotsPerStratum, seed);
  });
  const auto [batched_s, batched_pl] = time_strata([&](double q,
                                                       std::uint64_t seed) {
    return core::sample_protocol_batch(executor, decoder, q,
                                       kShotsPerStratum, seed);
  });
  std::printf("engine check (%s strata): scalar %.3fs, batched %.3fs "
              "(%.1fx); pL(0.01) %.2e vs %.2e\n\n",
              name.c_str(), scalar_s, batched_s, scalar_s / batched_s,
              scalar_pl, batched_pl);
}

}  // namespace

int main() {
  std::printf("Fig. 4 reproduction: logical error rate of deterministic "
              "FT |0>_L preparation (E1_1 noise)\n");
  std::printf("strata: %zu shots at q=0.1 + %zu shots at q=0.02, MIS "
              "re-weighting\n\n",
              kShotsPerStratum, kShotsPerStratum);

  std::printf("%-14s", "p");
  for (double p : kGrid) {
    std::printf("  %9.1e", p);
  }
  std::printf("\n%-14s", "Linear");
  for (double p : kGrid) {
    std::printf("  %9.3e", p);
  }
  std::printf("\n");

  bool compared_engines = false;
  for (const auto& code : qec::all_library_codes()) {
    core::Protocol protocol;
    try {
      protocol = core::synthesize_protocol(code, qec::LogicalBasis::Zero);
    } catch (const std::exception& e) {
      std::printf("%-14s  synthesis failed: %s\n", code.name().c_str(),
                  e.what());
      continue;
    }
    const core::Executor executor(protocol);
    const decoder::PerfectDecoder decoder(code);
    if (!compared_engines) {
      compared_engines = true;
      compare_engines(executor, decoder, code.name());
    }
    const std::vector<core::TrajectoryBatch> batches = {
        core::sample_protocol_batch(executor, decoder, 0.1,
                                    kShotsPerStratum, 0xF16'4'0001ULL),
        core::sample_protocol_batch(executor, decoder, 0.02,
                                    kShotsPerStratum, 0xF16'4'0002ULL)};

    std::printf("%-14s", code.name().c_str());
    for (double p : kGrid) {
      const auto est = core::estimate_logical_rate(batches, p);
      std::printf("  %9.3e", est.mean);
    }
    std::printf("\n");

    // Error bars (one standard error) on a second line for reference.
    std::printf("%-14s", "  +-");
    for (double p : kGrid) {
      const auto est = core::estimate_logical_rate(batches, p);
      std::printf("  %9.1e", est.std_error);
    }
    std::printf("\n");
  }

  std::printf("\nExpected shape (paper): all curves ~ O(p^2), i.e. two "
              "orders below Linear at p = 1e-2 and four below at 1e-4 "
              "(up to sampling noise).\n");
  return 0;
}
