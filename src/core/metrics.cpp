#include "core/metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ftsp::core {

namespace {

LayerMetricsReport layer_metrics(const CompiledLayer& layer) {
  LayerMetricsReport report;
  for (const auto& gadget : layer.gadgets) {
    ++report.verif_measurements;
    report.verif_cnots += gadget.support.popcount();
    if (gadget.flagged) {
      ++report.verif_flags;
      report.flag_cnots += 2;
    }
  }
  for (const auto& [key, branch] : layer.branches) {
    (void)key;
    const std::size_t meas = branch.plan.measurements.size();
    const std::size_t cnots = branch.plan.total_weight();
    if (branch.is_hook_branch) {
      report.hook_measurements.push_back(meas);
      report.hook_cnots.push_back(cnots);
    } else {
      report.corr_measurements.push_back(meas);
      report.corr_cnots.push_back(cnots);
    }
  }
  return report;
}

std::string bracket_list(const std::vector<std::size_t>& values) {
  if (values.empty()) {
    return "-";
  }
  std::string s = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) {
      s += ',';
    }
    s += std::to_string(values[i]);
  }
  s += ']';
  return s;
}

}  // namespace

ProtocolMetrics compute_metrics(const Protocol& protocol) {
  ProtocolMetrics metrics;
  metrics.prep_cnots = protocol.prep.cnot_count();

  metrics.peak_qubits = protocol.num_data_qubits();
  for (const auto* layer : {&protocol.layer1, &protocol.layer2}) {
    if (!layer->has_value()) {
      continue;
    }
    metrics.peak_qubits =
        std::max(metrics.peak_qubits, (*layer)->verif.num_qubits());
    for (const auto& [key, branch] : (*layer)->branches) {
      (void)key;
      metrics.peak_qubits =
          std::max(metrics.peak_qubits, branch.circ.num_qubits());
    }
  }

  std::size_t branch_anc_sum = 0;
  std::size_t branch_cnot_sum = 0;
  const auto absorb = [&](const CompiledLayer& layer,
                          std::optional<LayerMetricsReport>& slot) {
    LayerMetricsReport report = layer_metrics(layer);
    metrics.total_verif_ancillas +=
        report.verif_measurements + report.verif_flags;
    metrics.total_verif_cnots += report.verif_cnots + report.flag_cnots;
    for (const auto& list : {report.corr_measurements,
                             report.hook_measurements}) {
      for (std::size_t v : list) {
        branch_anc_sum += v;
        ++metrics.branch_count;
      }
    }
    for (const auto& list : {report.corr_cnots, report.hook_cnots}) {
      for (std::size_t v : list) {
        branch_cnot_sum += v;
      }
    }
    slot = std::move(report);
  };
  if (protocol.layer1.has_value()) {
    absorb(*protocol.layer1, metrics.layer1);
  }
  if (protocol.layer2.has_value()) {
    absorb(*protocol.layer2, metrics.layer2);
  }
  if (metrics.branch_count > 0) {
    metrics.avg_corr_ancillas =
        static_cast<double>(branch_anc_sum) /
        static_cast<double>(metrics.branch_count);
    metrics.avg_corr_cnots = static_cast<double>(branch_cnot_sum) /
                             static_cast<double>(metrics.branch_count);
  }
  return metrics;
}

std::string metrics_row_header() {
  std::ostringstream out;
  out << std::left << std::setw(22) << "code" << std::setw(6) << "prep"
      << "| " << std::setw(4) << "am" << std::setw(4) << "af" << std::setw(4)
      << "wm" << std::setw(4) << "wf" << std::setw(12) << "corr_m"
      << std::setw(12) << "corr_w"
      << "| " << std::setw(4) << "am" << std::setw(4) << "af" << std::setw(4)
      << "wm" << std::setw(4) << "wf" << std::setw(12) << "corr_m"
      << std::setw(12) << "corr_w"
      << "| " << std::setw(5) << "SANC" << std::setw(6) << "SCNOT"
      << std::setw(7) << "avgANC" << std::setw(8) << "avgCNOT";
  return out.str();
}

std::string format_metrics_row(const std::string& label,
                               const ProtocolMetrics& m) {
  std::ostringstream out;
  out << std::left << std::setw(22) << label << std::setw(6) << m.prep_cnots;
  const auto layer = [&](const std::optional<LayerMetricsReport>& report) {
    out << "| ";
    if (!report.has_value()) {
      out << std::setw(4) << "-" << std::setw(4) << "-" << std::setw(4)
          << "-" << std::setw(4) << "-" << std::setw(12) << "-"
          << std::setw(12) << "-";
      return;
    }
    std::vector<std::size_t> meas = report->corr_measurements;
    meas.insert(meas.end(), report->hook_measurements.begin(),
                report->hook_measurements.end());
    std::vector<std::size_t> cnots = report->corr_cnots;
    cnots.insert(cnots.end(), report->hook_cnots.begin(),
                 report->hook_cnots.end());
    out << std::setw(4) << report->verif_measurements << std::setw(4)
        << report->verif_flags << std::setw(4) << report->verif_cnots
        << std::setw(4) << report->flag_cnots << std::setw(12)
        << bracket_list(meas) << std::setw(12) << bracket_list(cnots);
  };
  layer(m.layer1);
  layer(m.layer2);
  out << "| " << std::setw(5) << m.total_verif_ancillas << std::setw(6)
      << m.total_verif_cnots << std::setw(7) << std::setprecision(3)
      << m.avg_corr_ancillas << std::setw(8) << std::setprecision(3)
      << m.avg_corr_cnots;
  return out.str();
}

}  // namespace ftsp::core
