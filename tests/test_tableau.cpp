#include "sim/tableau.hpp"

#include <gtest/gtest.h>

#include <random>

#include "sim/faults.hpp"
#include "sim/pauli_frame.hpp"

namespace ftsp::sim {
namespace {

using circuit::Circuit;
using qec::Pauli;

TEST(Tableau, InitialStateIsAllZeros) {
  const Tableau t(3);
  EXPECT_TRUE(t.stabilizes(Pauli::from_string("ZII")));
  EXPECT_TRUE(t.stabilizes(Pauli::from_string("IZI")));
  EXPECT_TRUE(t.stabilizes(Pauli::from_string("ZZZ")));
  EXPECT_FALSE(t.stabilizes(Pauli::from_string("XII")));
}

TEST(Tableau, MinusStateNotStabilizedPositively) {
  Tableau t(1);
  std::mt19937_64 rng(1);
  t.apply_x(0);  // |1>: stabilized by -Z.
  EXPECT_FALSE(t.stabilizes(Pauli::from_string("Z")));
  (void)rng;
}

TEST(Tableau, HadamardMakesPlus) {
  Tableau t(1);
  t.apply_h(0);
  EXPECT_TRUE(t.stabilizes(Pauli::from_string("X")));
  EXPECT_FALSE(t.stabilizes(Pauli::from_string("Z")));
}

TEST(Tableau, SGateTurnsPlusIntoYEigenstate) {
  Tableau t(1);
  t.apply_h(0);
  t.apply_s(0);
  EXPECT_TRUE(t.stabilizes(Pauli::from_string("Y")));
  EXPECT_FALSE(t.stabilizes(Pauli::from_string("X")));
}

TEST(Tableau, BellStateStabilizers) {
  Tableau t(2);
  t.apply_h(0);
  t.apply_cnot(0, 1);
  EXPECT_TRUE(t.stabilizes(Pauli::from_string("XX")));
  EXPECT_TRUE(t.stabilizes(Pauli::from_string("ZZ")));
  EXPECT_FALSE(t.stabilizes(Pauli::from_string("XI")));
  // -YY stabilizes the Bell state, +YY does not.
  EXPECT_FALSE(t.stabilizes(Pauli::from_string("YY")));
}

TEST(Tableau, GhzStateStabilizers) {
  Tableau t(3);
  t.apply_h(0);
  t.apply_cnot(0, 1);
  t.apply_cnot(1, 2);
  EXPECT_TRUE(t.stabilizes(Pauli::from_string("XXX")));
  EXPECT_TRUE(t.stabilizes(Pauli::from_string("ZZI")));
  EXPECT_TRUE(t.stabilizes(Pauli::from_string("IZZ")));
  EXPECT_FALSE(t.stabilizes(Pauli::from_string("ZII")));
}

TEST(Tableau, PauliGatesFlipSigns) {
  Tableau t(1);
  t.apply_h(0);  // |+>
  t.apply_z(0);  // |->
  EXPECT_FALSE(t.stabilizes(Pauli::from_string("X")));
  t.apply_z(0);  // |+> again
  EXPECT_TRUE(t.stabilizes(Pauli::from_string("X")));
}

TEST(Tableau, MeasureZDeterministicOnBasisState) {
  Tableau t(2);
  std::mt19937_64 rng(42);
  t.apply_x(0);
  EXPECT_TRUE(t.z_is_deterministic(0));
  EXPECT_TRUE(t.measure_z(0, rng));   // |1> -> outcome 1.
  EXPECT_FALSE(t.measure_z(1, rng));  // |0> -> outcome 0.
}

TEST(Tableau, MeasurePlusIsRandomButCollapses) {
  std::size_t ones = 0;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Tableau t(1);
    std::mt19937_64 rng(seed);
    t.apply_h(0);
    EXPECT_FALSE(t.z_is_deterministic(0));
    const bool first = t.measure_z(0, rng);
    ones += first ? 1 : 0;
    // Collapsed: the second measurement must repeat the first.
    EXPECT_TRUE(t.z_is_deterministic(0));
    EXPECT_EQ(t.measure_z(0, rng), first);
  }
  EXPECT_GT(ones, 4u);
  EXPECT_LT(ones, 28u);
}

TEST(Tableau, BellMeasurementsAreCorrelated) {
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    Tableau t(2);
    std::mt19937_64 rng(seed);
    t.apply_h(0);
    t.apply_cnot(0, 1);
    EXPECT_EQ(t.measure_z(0, rng), t.measure_z(1, rng));
  }
}

TEST(Tableau, MeasureXOnPlusIsDeterministic) {
  Tableau t(1);
  std::mt19937_64 rng(7);
  t.apply_h(0);
  EXPECT_FALSE(t.measure_x(0, rng));
  t.apply_z(0);  // Now |->.
  EXPECT_TRUE(t.measure_x(0, rng));
}

TEST(Tableau, PrepResetsToBasisState) {
  Tableau t(1);
  std::mt19937_64 rng(3);
  t.apply_h(0);
  t.prep_z(0, rng);
  EXPECT_TRUE(t.stabilizes(Pauli::from_string("Z")));
  t.prep_x(0, rng);
  EXPECT_TRUE(t.stabilizes(Pauli::from_string("X")));
}

TEST(Tableau, RunChecksQubitCount) {
  Tableau t(2);
  std::mt19937_64 rng(0);
  const Circuit c(3);
  EXPECT_THROW(t.run(c, rng), std::invalid_argument);
}

TEST(Tableau, StabilizerMeasurementCircuitIsDeterministic) {
  // Measure ZZ on a Bell pair via an ancilla: outcome must be 0.
  Circuit c(3);
  c.h(0);
  c.cnot(0, 1);
  c.prep_z(2);
  c.cnot(0, 2);
  c.cnot(1, 2);
  c.measure_z(2);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Tableau t(3);
    std::mt19937_64 rng(seed);
    const auto outcomes = t.run(c, rng);
    EXPECT_FALSE(outcomes[0]);
  }
}

/// Cross-validation: Pauli-frame fault propagation predicts exactly the
/// measurement flips the full tableau simulation produces, for random
/// Pauli faults injected at random positions of a stabilizer measurement
/// circuit.
class FrameVsTableau : public ::testing::TestWithParam<int> {};

TEST_P(FrameVsTableau, FlipPredictionsMatch) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 101 + 17);

  // GHZ-4 preparation + two ancilla-based stabilizer measurements (ZZ on
  // 0,1 and XXXX via H conjugation is omitted — keep Z type for
  // determinism).
  Circuit c(6);
  c.prep_z(0);
  c.prep_z(1);
  c.prep_z(2);
  c.prep_z(3);
  c.h(0);
  c.cnot(0, 1);
  c.cnot(1, 2);
  c.cnot(2, 3);
  c.prep_z(4);
  c.cnot(0, 4);
  c.cnot(1, 4);
  c.measure_z(4);
  c.prep_z(5);
  c.cnot(2, 5);
  c.cnot(3, 5);
  c.measure_z(5);

  const auto sites = enumerate_fault_sites(c);
  std::uniform_int_distribution<std::size_t> pick_gate(0,
                                                       c.gates().size() - 1);
  const std::size_t gate = pick_gate(rng);
  const auto& ops = sites[gate].ops;
  std::uniform_int_distribution<std::size_t> pick_op(0, ops.size() - 1);
  const auto& op = ops[pick_op(rng)];

  // Frame prediction.
  PauliFrame frame(c);
  for (std::size_t g = 0; g < c.gates().size(); ++g) {
    apply_gate(frame, c.gates()[g]);
    if (g == gate) {
      apply_fault(frame, op, c.gates()[g]);
    }
  }

  // Tableau ground truth (outcomes deterministic for this circuit).
  Tableau t(6);
  std::mt19937_64 trng(1);
  std::vector<bool> outcomes(c.num_cbits(), false);
  for (std::size_t g = 0; g < c.gates().size(); ++g) {
    t.apply_gate(c.gates()[g], trng, outcomes);
    if (g == gate) {
      for (int k = 0; k < op.num_terms; ++k) {
        const auto& term = op.terms[static_cast<std::size_t>(k)];
        if (term.x) {
          t.apply_x(term.qubit);
        }
        if (term.z) {
          t.apply_z(term.qubit);
        }
      }
      if (op.flip_outcome) {
        const auto bit =
            static_cast<std::size_t>(c.gates()[g].cbit);
        outcomes[bit] = !outcomes[bit];
      }
    }
  }

  for (std::size_t b = 0; b < c.num_cbits(); ++b) {
    EXPECT_EQ(outcomes[b], frame.outcomes[b]) << "classical bit " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFaults, FrameVsTableau,
                         ::testing::Range(0, 50));

}  // namespace
}  // namespace ftsp::sim
