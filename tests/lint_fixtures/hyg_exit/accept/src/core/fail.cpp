#include <stdexcept>
void fail(const char* why) { throw std::runtime_error(why); }
