// The serving front-end: JSON parsing, request handling, the ordered
// multi-threaded line loop, and the unix-socket server.
#include "compile/service.hpp"

#include <gtest/gtest.h>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include <sstream>
#include <thread>

#include "compile/json.hpp"
#include "qec/code_library.hpp"

namespace ftsp::compile {
namespace {

TEST(Json, ParsesFlatObjects) {
  const auto obj = parse_json_object(
      R"({"op":"sample","code":"Steane","p":0.01,"shots":100,"ok":true,)"
      R"("none":null,"esc":"a\"b\\c\ndA"})");
  EXPECT_EQ(obj.at("op").text, "sample");
  EXPECT_EQ(obj.at("code").text, "Steane");
  EXPECT_DOUBLE_EQ(obj.at("p").number, 0.01);
  EXPECT_DOUBLE_EQ(obj.at("shots").number, 100.0);
  EXPECT_TRUE(obj.at("ok").boolean);
  EXPECT_EQ(obj.at("none").kind, JsonValue::Kind::Null);
  EXPECT_EQ(obj.at("esc").text, "a\"b\\c\nd\x41");
  EXPECT_TRUE(parse_json_object("{}").empty());
  EXPECT_TRUE(parse_json_object("  { }  ").empty());
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse_json_object(""), std::invalid_argument);
  EXPECT_THROW(parse_json_object("{"), std::invalid_argument);
  EXPECT_THROW(parse_json_object(R"({"a":1,})"), std::invalid_argument);
  EXPECT_THROW(parse_json_object(R"({"a":{"b":1}})"), std::invalid_argument);
  EXPECT_THROW(parse_json_object(R"({"a":[1]})"), std::invalid_argument);
  EXPECT_THROW(parse_json_object(R"({"a":1} extra)"), std::invalid_argument);
  EXPECT_THROW(parse_json_object(R"({"a":bogus})"), std::invalid_argument);
}

TEST(Json, WriterEscapesAndOrders) {
  JsonWriter out;
  out.field("s", "a\"b\nc");
  out.field("n", 1.5);
  out.field("u", std::uint64_t{42});
  out.field("b", true);
  out.raw_field("arr", "[1,2]");
  EXPECT_EQ(out.take(),
            R"({"s":"a\"b\nc","n":1.5,"u":42,"b":true,"arr":[1,2]})");
}

class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const ProtocolCompiler compiler;
    service_ = new ProtocolService();
    service_->add(compiler.compile(qec::steane()));
    service_->add(compiler.compile(qec::surface3()));
  }
  static void TearDownTestSuite() {
    delete service_;
    service_ = nullptr;
  }

  static ProtocolService* service_;
};

ProtocolService* ServiceTest::service_ = nullptr;

TEST_F(ServiceTest, ListsCodes) {
  const auto response = service_->handle_request(R"({"op":"codes"})");
  EXPECT_TRUE(response.find(R"("ok":true)") != std::string::npos);
  EXPECT_TRUE(response.find("Steane") != std::string::npos);
  EXPECT_TRUE(response.find("Surface_3") != std::string::npos);
}

TEST_F(ServiceTest, InfoReportsProvenance) {
  const auto response =
      service_->handle_request(R"({"op":"info","code":"Steane"})");
  EXPECT_NE(response.find(R"("ok":true)"), std::string::npos);
  EXPECT_NE(response.find(R"("n":7)"), std::string::npos);
  EXPECT_NE(response.find(R"("d":3)"), std::string::npos);
  EXPECT_NE(response.find("engine"), std::string::npos);
}

TEST_F(ServiceTest, SampleIsDeterministicPerSeed) {
  const std::string request =
      R"({"op":"sample","code":"Steane","p":0.02,"shots":4096,"seed":5})";
  const auto a = service_->handle_request(request);
  const auto b = service_->handle_request(request);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find(R"("ok":true)"), std::string::npos);
  EXPECT_NE(a.find("x_fails"), std::string::npos);

  const auto other = service_->handle_request(
      R"({"op":"sample","code":"Steane","p":0.02,"shots":4096,"seed":6})");
  EXPECT_NE(a, other) << "seed ignored";
}

TEST_F(ServiceTest, RateAndCircuitWork) {
  const auto rate = service_->handle_request(
      R"({"op":"rate","code":"Surface_3","p":0.01,"shots":2048})");
  EXPECT_NE(rate.find("p_logical"), std::string::npos);
  const auto qasm = service_->handle_request(
      R"({"op":"circuit","code":"Steane","format":"qasm"})");
  EXPECT_NE(qasm.find("OPENQASM"), std::string::npos);
  const auto text = service_->handle_request(
      R"({"op":"circuit","code":"Steane","format":"text"})");
  EXPECT_NE(text.find("ftsp-protocol v1"), std::string::npos);
}

TEST_F(ServiceTest, ErrorsNeverThrowAndEchoId) {
  const auto bad_op = service_->handle_request(R"({"id":7,"op":"nope"})");
  EXPECT_NE(bad_op.find(R"("id":7)"), std::string::npos);
  EXPECT_NE(bad_op.find(R"("ok":false)"), std::string::npos);
  // Op validation runs before the code lookup: a typo'd op is reported
  // as such even without a "code" field.
  EXPECT_NE(bad_op.find("unknown op 'nope'"), std::string::npos);
  const auto bad_code = service_->handle_request(
      R"({"id":"x","op":"info","code":"Nope"})");
  EXPECT_NE(bad_code.find(R"("id":"x")"), std::string::npos);
  EXPECT_NE(bad_code.find("unknown code"), std::string::npos);
  const auto not_json = service_->handle_request("garbage");
  EXPECT_NE(not_json.find(R"("ok":false)"), std::string::npos);
  // Bool/null ids are echoed as their literal tokens, not dropped.
  const auto bool_id = service_->handle_request(R"({"id":true,"op":"nope"})");
  EXPECT_NE(bool_id.find(R"("id":true)"), std::string::npos);
}

TEST_F(ServiceTest, RejectsOutOfRangeParameters) {
  for (const char* request : {
           R"({"op":"rate","code":"Steane","shots":-1})",
           R"({"op":"rate","code":"Steane","shots":1e300})",
           R"({"op":"rate","code":"Steane","shots":10.5})",
           R"({"op":"sample","code":"Steane","threads":100000})",
           R"({"op":"sample","code":"Steane","seed":"abc"})",
       }) {
    const auto response = service_->handle_request(request);
    EXPECT_NE(response.find(R"("ok":false)"), std::string::npos) << request;
  }
}

TEST_F(ServiceTest, PlusBasisServedUnderQualifiedName) {
  const ProtocolCompiler compiler;
  ProtocolService service;
  service.add(compiler.compile(qec::steane(), qec::LogicalBasis::Zero));
  service.add(compiler.compile(qec::steane(), qec::LogicalBasis::Plus));
  ASSERT_EQ(service.size(), 2u) << "bases shadowed each other";
  const auto codes = service.handle_request(R"({"op":"codes"})");
  EXPECT_NE(codes.find(R"("Steane")"), std::string::npos);
  EXPECT_NE(codes.find(R"("Steane/plus")"), std::string::npos);
  const auto info = service.handle_request(
      R"({"op":"info","code":"Steane/plus"})");
  EXPECT_NE(info.find(R"("basis":"plus")"), std::string::npos);
  const auto zero = service.handle_request(R"({"op":"info","code":"Steane"})");
  EXPECT_NE(zero.find(R"("basis":"zero")"), std::string::npos);
}

TEST_F(ServiceTest, ServeLinesPreservesOrderAcrossThreads) {
  std::ostringstream requests;
  constexpr int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    requests << R"({"id":)" << i
             << R"(,"op":"sample","code":"Steane","p":0.02,"shots":512,)"
             << R"("seed":)" << i << "}\n";
  }
  std::istringstream in(requests.str());
  std::ostringstream out;
  ServeOptions options;
  options.num_threads = 8;
  EXPECT_EQ(serve_lines(*service_, in, out, options),
            static_cast<std::size_t>(kRequests));

  std::istringstream lines(out.str());
  std::string line;
  int expected = 0;
  while (std::getline(lines, line)) {
    const std::string prefix = "{\"id\":" + std::to_string(expected);
    EXPECT_EQ(line.rfind(prefix, 0), 0u)
        << "line " << expected << " out of order: " << line;
    ++expected;
  }
  EXPECT_EQ(expected, kRequests);
}

#ifndef _WIN32
int connect_with_retry(const std::string& path) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    path.copy(address.sun_path, path.size());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                  sizeof(address)) == 0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

TEST_F(ServiceTest, SocketServerSurvivesEarlyDisconnectAndAnswers) {
  const std::string path =
      "/tmp/ftsp-test-sock-" + std::to_string(::getpid());
  std::thread server([&] {
    serve_socket(*service_, path, {}, /*max_connections=*/2);
  });

  // Connection 1: send a request and hang up WITHOUT reading the
  // response. The server's write hits a closed peer — it must shrug
  // (EPIPE), not die of SIGPIPE taking every connection with it.
  {
    const int fd = connect_with_retry(path);
    ASSERT_GE(fd, 0) << "could not connect to " << path;
    const std::string request =
        R"({"op":"sample","code":"Steane","p":0.02,"shots":2048})"
        "\n";
    ASSERT_EQ(::write(fd, request.data(), request.size()),
              static_cast<ssize_t>(request.size()));
    ::close(fd);
  }

  // Connection 2: the server must still be alive and correct.
  const int fd = connect_with_retry(path);
  ASSERT_GE(fd, 0) << "server died after the rude client";
  const std::string request = R"({"op":"info","code":"Steane"})"
                              "\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  while (response.find('\n') == std::string::npos) {
    const auto got = ::read(fd, buffer, sizeof(buffer));
    ASSERT_GT(got, 0);
    response.append(buffer, static_cast<std::size_t>(got));
  }
  ::close(fd);
  server.join();
  EXPECT_NE(response.find(R"("ok":true)"), std::string::npos);
  EXPECT_NE(response.find(R"("n":7)"), std::string::npos);
}
#endif

}  // namespace
}  // namespace ftsp::compile
