#include <string>
#include <unordered_map>
struct ByteWriter {
  std::string bytes;
  void u32(unsigned v) { bytes.push_back(static_cast<char>(v)); }
};
std::string pack(const std::unordered_map<int, int>& table) {
  ByteWriter w;
  for (const auto& [k, v] : table) {
    w.u32(static_cast<unsigned>(k + v));
  }
  return w.bytes;
}
