// The serving front-end: JSON parsing, request handling, the ordered
// multi-threaded line loop, and the unix-socket server.
#include "compile/service.hpp"

#include <gtest/gtest.h>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include <sstream>
#include <thread>

#include "compile/json.hpp"
#include "obs/registry.hpp"
#include "qec/code_library.hpp"
#include "serve/cache.hpp"

namespace ftsp::compile {
namespace {

TEST(Json, ParsesFlatObjects) {
  const auto obj = parse_json_object(
      R"({"op":"sample","code":"Steane","p":0.01,"shots":100,"ok":true,)"
      R"("none":null,"esc":"a\"b\\c\ndA"})");
  EXPECT_EQ(obj.at("op").text, "sample");
  EXPECT_EQ(obj.at("code").text, "Steane");
  EXPECT_DOUBLE_EQ(obj.at("p").number, 0.01);
  EXPECT_DOUBLE_EQ(obj.at("shots").number, 100.0);
  EXPECT_TRUE(obj.at("ok").boolean);
  EXPECT_EQ(obj.at("none").kind, JsonValue::Kind::Null);
  EXPECT_EQ(obj.at("esc").text, "a\"b\\c\nd\x41");
  EXPECT_TRUE(parse_json_object("{}").empty());
  EXPECT_TRUE(parse_json_object("  { }  ").empty());
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse_json_object(""), std::invalid_argument);
  EXPECT_THROW(parse_json_object("{"), std::invalid_argument);
  EXPECT_THROW(parse_json_object(R"({"a":1,})"), std::invalid_argument);
  EXPECT_THROW(parse_json_object(R"({"a":{"b":1}})"), std::invalid_argument);
  EXPECT_THROW(parse_json_object(R"({"a":[1]})"), std::invalid_argument);
  EXPECT_THROW(parse_json_object(R"({"a":1} extra)"), std::invalid_argument);
  EXPECT_THROW(parse_json_object(R"({"a":bogus})"), std::invalid_argument);
}

TEST(Json, WriterEscapesAndOrders) {
  JsonWriter out;
  out.field("s", "a\"b\nc");
  out.field("n", 1.5);
  out.field("u", std::uint64_t{42});
  out.field("b", true);
  out.raw_field("arr", "[1,2]");
  EXPECT_EQ(out.take(),
            R"({"s":"a\"b\nc","n":1.5,"u":42,"b":true,"arr":[1,2]})");
}

class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const ProtocolCompiler compiler;
    service_ = new ProtocolService();
    service_->add(compiler.compile(qec::steane()));
    service_->add(compiler.compile(qec::surface3()));
  }
  static void TearDownTestSuite() {
    delete service_;
    service_ = nullptr;
  }

  static ProtocolService* service_;
};

ProtocolService* ServiceTest::service_ = nullptr;

TEST_F(ServiceTest, ListsCodes) {
  const auto response = service_->handle_request(R"({"op":"codes"})");
  EXPECT_TRUE(response.find(R"("ok":true)") != std::string::npos);
  EXPECT_TRUE(response.find("Steane") != std::string::npos);
  EXPECT_TRUE(response.find("Surface_3") != std::string::npos);
}

TEST_F(ServiceTest, InfoReportsProvenance) {
  const auto response =
      service_->handle_request(R"({"op":"info","code":"Steane"})");
  EXPECT_NE(response.find(R"("ok":true)"), std::string::npos);
  EXPECT_NE(response.find(R"("n":7)"), std::string::npos);
  EXPECT_NE(response.find(R"("d":3)"), std::string::npos);
  EXPECT_NE(response.find("engine"), std::string::npos);
}

TEST_F(ServiceTest, SampleIsDeterministicPerSeed) {
  const std::string request =
      R"({"op":"sample","code":"Steane","p":0.02,"shots":4096,"seed":5})";
  const auto a = service_->handle_request(request);
  const auto b = service_->handle_request(request);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find(R"("ok":true)"), std::string::npos);
  EXPECT_NE(a.find("x_fails"), std::string::npos);

  const auto other = service_->handle_request(
      R"({"op":"sample","code":"Steane","p":0.02,"shots":4096,"seed":6})");
  EXPECT_NE(a, other) << "seed ignored";
}

TEST_F(ServiceTest, RateAndCircuitWork) {
  const auto rate = service_->handle_request(
      R"({"op":"rate","code":"Surface_3","p":0.01,"shots":2048})");
  EXPECT_NE(rate.find("p_logical"), std::string::npos);
  const auto qasm = service_->handle_request(
      R"({"op":"circuit","code":"Steane","format":"qasm"})");
  EXPECT_NE(qasm.find("OPENQASM"), std::string::npos);
  const auto text = service_->handle_request(
      R"({"op":"circuit","code":"Steane","format":"text"})");
  EXPECT_NE(text.find("ftsp-protocol v1"), std::string::npos);
}

TEST_F(ServiceTest, ErrorsNeverThrowAndEchoId) {
  const auto bad_op = service_->handle_request(R"({"id":7,"op":"nope"})");
  EXPECT_NE(bad_op.find(R"("id":7)"), std::string::npos);
  EXPECT_NE(bad_op.find(R"("ok":false)"), std::string::npos);
  // Op validation runs before the code lookup: a typo'd op is reported
  // as such even without a "code" field.
  EXPECT_NE(bad_op.find("unknown op 'nope'"), std::string::npos);
  const auto bad_code = service_->handle_request(
      R"({"id":"x","op":"info","code":"Nope"})");
  EXPECT_NE(bad_code.find(R"("id":"x")"), std::string::npos);
  EXPECT_NE(bad_code.find("unknown code"), std::string::npos);
  const auto not_json = service_->handle_request("garbage");
  EXPECT_NE(not_json.find(R"("ok":false)"), std::string::npos);
  // Bool/null ids are echoed as their literal tokens, not dropped.
  const auto bool_id = service_->handle_request(R"({"id":true,"op":"nope"})");
  EXPECT_NE(bool_id.find(R"("id":true)"), std::string::npos);
}

TEST_F(ServiceTest, RejectsOutOfRangeParameters) {
  for (const char* request : {
           R"({"op":"rate","code":"Steane","shots":-1})",
           R"({"op":"rate","code":"Steane","shots":1e300})",
           R"({"op":"rate","code":"Steane","shots":10.5})",
           R"({"op":"sample","code":"Steane","threads":100000})",
           R"({"op":"sample","code":"Steane","seed":"abc"})",
       }) {
    const auto response = service_->handle_request(request);
    EXPECT_NE(response.find(R"("ok":false)"), std::string::npos) << request;
  }
}

TEST_F(ServiceTest, PlusBasisServedUnderQualifiedName) {
  const ProtocolCompiler compiler;
  ProtocolService service;
  service.add(compiler.compile(qec::steane(), qec::LogicalBasis::Zero));
  service.add(compiler.compile(qec::steane(), qec::LogicalBasis::Plus));
  ASSERT_EQ(service.size(), 2u) << "bases shadowed each other";
  const auto codes = service.handle_request(R"({"op":"codes"})");
  EXPECT_NE(codes.find(R"("Steane")"), std::string::npos);
  EXPECT_NE(codes.find(R"("Steane/plus")"), std::string::npos);
  const auto info = service.handle_request(
      R"({"op":"info","code":"Steane/plus"})");
  EXPECT_NE(info.find(R"("basis":"plus")"), std::string::npos);
  const auto zero = service.handle_request(R"({"op":"info","code":"Steane"})");
  EXPECT_NE(zero.find(R"("basis":"zero")"), std::string::npos);
}

TEST_F(ServiceTest, ServeLinesPreservesOrderAcrossThreads) {
  std::ostringstream requests;
  constexpr int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    requests << R"({"id":)" << i
             << R"(,"op":"sample","code":"Steane","p":0.02,"shots":512,)"
             << R"("seed":)" << i << "}\n";
  }
  std::istringstream in(requests.str());
  std::ostringstream out;
  ServeOptions options;
  options.num_threads = 8;
  EXPECT_EQ(serve_lines(*service_, in, out, options),
            static_cast<std::size_t>(kRequests));

  std::istringstream lines(out.str());
  std::string line;
  int expected = 0;
  while (std::getline(lines, line)) {
    const std::string prefix = "{\"id\":" + std::to_string(expected);
    EXPECT_EQ(line.rfind(prefix, 0), 0u)
        << "line " << expected << " out of order: " << line;
    ++expected;
  }
  EXPECT_EQ(expected, kRequests);
}

// ---------------------------------------------------------------------------
// v1 wire compatibility: these responses are FROZEN, byte for byte.
// A failure here means an unversioned client somewhere just broke.
// Never update the expected strings — fix the regression instead.
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, V1GoldenErrorResponses) {
  EXPECT_EQ(service_->handle_request("garbage"),
            R"({"ok":false,"error":"json: expected '{' at offset 0"})");
  // The v1 unknown-op hint must NOT grow as ops are added (health,
  // stats, reload are v2-era; the v1 hint string is frozen).
  EXPECT_EQ(service_->handle_request(R"({"id":7,"op":"nope"})"),
            R"x({"id":7,"ok":false,"error":"unknown op 'nope' (codes|info|sample|rate|circuit)"})x");
  EXPECT_EQ(
      service_->handle_request(R"({"id":"x","op":"info","code":"Nope"})"),
      R"x({"id":"x","ok":false,"error":"unknown code 'Nope' (try {\"op\":\"codes\"})"})x");
  EXPECT_EQ(
      service_->handle_request(R"({"op":"sample","code":"Steane","shots":-1})"),
      R"({"ok":false,)"
      R"("error":"parameter 'shots' must be an integer in [0, 4194304]"})");
}

TEST_F(ServiceTest, V1GoldenCodesResponse) {
  // Shadow-free store: no "shadowed" field, exact historical bytes.
  EXPECT_EQ(service_->handle_request(R"({"op":"codes"})"),
            R"({"ok":true,"codes":["Steane","Surface_3"]})");
}

TEST_F(ServiceTest, V1FieldOrderIsStable) {
  const auto expect_order = [](const std::string& response,
                               const std::vector<std::string>& fields) {
    std::size_t pos = 0;
    for (const auto& field : fields) {
      const auto at = response.find("\"" + field + "\":", pos);
      ASSERT_NE(at, std::string::npos)
          << "missing/misordered '" << field << "' in " << response;
      pos = at;
    }
  };
  expect_order(service_->handle_request(
                   R"({"op":"sample","code":"Steane","p":0.02,"shots":256})"),
               {"ok", "code", "p", "shots", "p_logical", "std_error", "seed",
                "x_fails", "z_fails", "hook_terminated", "total_faults"});
  expect_order(service_->handle_request(
                   R"({"op":"rate","code":"Steane","p":0.01,"shots":1024})"),
               {"ok", "code", "p", "p_logical", "std_error", "ci_low",
                "ci_high", "tail_weight", "mc_shots", "exhaustive_cases",
                "equivalent_naive_shots"});
  expect_order(
      service_->handle_request(R"({"op":"info","code":"Steane"})"),
      {"ok", "code", "basis", "n", "k", "d", "key", "engine", "coupling",
       "prep_fallback", "prep_cnots", "verification_measurements",
       "branches", "solver_invocations", "compile_wall_seconds"});
}

TEST_F(ServiceTest, ExplicitV1MatchesUnversionedByteForByte) {
  for (const auto& [unversioned, versioned] :
       std::vector<std::pair<std::string, std::string>>{
           {R"({"op":"info","code":"Steane"})",
            R"({"v":1,"op":"info","code":"Steane"})"},
           {R"({"op":"codes","id":42})", R"({"v":1,"op":"codes","id":42})"},
           {R"({"op":"nope"})", R"({"v":1,"op":"nope"})"},
       }) {
    EXPECT_EQ(service_->handle_request(unversioned),
              service_->handle_request(versioned));
  }
}

// ---------------------------------------------------------------------------
// v2 envelope
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, V2EnvelopeLeadsWithVersionAndOk) {
  const auto ok = service_->handle_request(R"({"v":2,"op":"codes","id":3})");
  EXPECT_EQ(ok.rfind(R"({"v":2,"ok":true,"id":3,)", 0), 0u) << ok;
  EXPECT_NE(ok.find(R"("codes":["Steane","Surface_3"])"), std::string::npos);
}

TEST_F(ServiceTest, V2ErrorsCarryMachineCodes) {
  const auto cases = std::vector<std::pair<std::string, std::string>>{
      {R"({"v":2,"op":"nope"})", "unknown_op"},
      {R"({"v":2,"op":"info","code":"Nope"})", "unknown_code"},
      {R"({"v":2,"op":"sample","code":"Steane","shots":-1})", "bad_param"},
      {R"({"v":2,"op":"reload"})", "unsupported"},
  };
  for (const auto& [request, code] : cases) {
    const auto response = service_->handle_request(request);
    EXPECT_EQ(response.rfind(R"({"v":2,"ok":false)", 0), 0u) << response;
    EXPECT_NE(response.find("\"error\":{\"code\":\"" + code + "\","),
              std::string::npos)
        << request << " -> " << response;
  }
  // The v2 unknown-op hint lists the full live op table.
  EXPECT_NE(service_->handle_request(R"({"v":2,"op":"nope"})")
                .find("codes|info|sample|rate|circuit|health|stats|reload"),
            std::string::npos);
}

TEST_F(ServiceTest, UnsupportedVersionIsRejectedButEchoesId) {
  EXPECT_EQ(service_->handle_request(R"({"v":3,"op":"codes","id":9})"),
            R"x({"id":9,"ok":false,"error":"unsupported protocol version '3' (1|2)"})x");
}

TEST_F(ServiceTest, V2PayloadMatchesV1Payload) {
  // One payload, two envelopes: the fields after the envelope prefix
  // must be identical so cached payloads serve both dialects.
  const auto v1 = service_->handle_request(
      R"({"op":"sample","code":"Steane","p":0.02,"shots":512,"seed":4})");
  const auto v2 = service_->handle_request(
      R"({"v":2,"op":"sample","code":"Steane","p":0.02,"shots":512,"seed":4})");
  EXPECT_EQ(v1.substr(std::string(R"({"ok":true,)").size()),
            v2.substr(std::string(R"({"v":2,"ok":true,)").size()));
}

// ---------------------------------------------------------------------------
// New ops: health, stats; shadow surfacing; cached serving
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, HealthReportsCountsAndGeneration) {
  const auto health = service_->handle_request(R"({"v":2,"op":"health"})");
  EXPECT_NE(health.find(R"("status":"serving")"), std::string::npos);
  EXPECT_NE(health.find(R"("codes":2)"), std::string::npos);
  EXPECT_NE(health.find(R"("generation":1)"), std::string::npos);
  EXPECT_NE(health.find(R"("reloadable":false)"), std::string::npos);
}

TEST_F(ServiceTest, StatsCountsRequestsPerOp) {
  const ProtocolCompiler compiler;
  ProtocolService service;
  service.add(compiler.compile(qec::steane()));
  service.handle_request(R"({"op":"codes"})");
  service.handle_request(R"({"op":"codes"})");
  service.handle_request(R"({"op":"info","code":"Steane"})");
  service.handle_request(R"({"op":"nope"})");
  const auto stats = service.handle_request(R"({"v":2,"op":"stats"})");
  EXPECT_NE(stats.find(R"("codes":2)"), std::string::npos) << stats;
  EXPECT_NE(stats.find(R"("info":1)"), std::string::npos) << stats;
  EXPECT_NE(stats.find(R"("rejected":1)"), std::string::npos) << stats;
  // No cache attached: explicit null, not absent.
  EXPECT_NE(stats.find(R"("cache":null)"), std::string::npos) << stats;
}

TEST_F(ServiceTest, ShadowedArtifactsAreSurfacedLoudly) {
  const ProtocolCompiler compiler;
  ProtocolService service;
  auto original = compiler.compile(qec::steane());
  auto replacement = original;
  replacement.key += ":alt";
  const std::string original_key = original.key;
  service.add(std::move(original));
  service.add(std::move(replacement));
  EXPECT_EQ(service.size(), 1u) << "same serving name must shadow";
  ASSERT_EQ(service.shadowed_keys().size(), 1u);
  EXPECT_EQ(service.shadowed_keys()[0], original_key);
  const auto codes = service.handle_request(R"({"op":"codes"})");
  EXPECT_NE(codes.find("\"shadowed\":[\"" + original_key + "\"]"),
            std::string::npos)
      << codes;
  // Health counts them too.
  const auto health = service.handle_request(R"({"v":2,"op":"health"})");
  EXPECT_NE(health.find(R"("shadowed":1)"), std::string::npos);
}

TEST_F(ServiceTest, CachedServingIsByteIdenticalAndCounted) {
  const ProtocolCompiler compiler;
  ProtocolService service;
  service.add(compiler.compile(qec::steane()));
  const std::string request =
      R"({"op":"rate","code":"Steane","p":0.01,"shots":2048,"seed":2})";
  const auto uncached = service.handle_request(request);

  const auto cache = std::make_shared<serve::PayloadCache>(1u << 20);
  service.set_payload_cache(cache);
  const auto first = service.handle_request(request);
  const auto second = service.handle_request(request);
  EXPECT_EQ(first, uncached) << "cache changed served bytes";
  EXPECT_EQ(second, uncached);
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_EQ(cache->stats().misses, 1u);

  // Requests differing only in thread count share one cache entry (the
  // determinism contract: thread count never changes result bytes)...
  const auto threaded = service.handle_request(
      R"({"op":"rate","code":"Steane","p":0.01,"shots":2048,"seed":2,)"
      R"("threads":2})");
  EXPECT_EQ(threaded, uncached);
  EXPECT_EQ(cache->stats().hits, 2u);
  // ...but invalid parameters are still rejected, never cache-hit past.
  const auto invalid = service.handle_request(
      R"({"op":"rate","code":"Steane","p":0.01,"shots":2048,"seed":2,)"
      R"("threads":100000})");
  EXPECT_NE(invalid.find(R"("ok":false)"), std::string::npos);

  // sample coalesces but does not memoize: identical repeats recompute
  // (deterministically) instead of occupying cache budget.
  const std::string sample =
      R"({"op":"sample","code":"Steane","p":0.02,"shots":256,"seed":8})";
  const auto sample_a = service.handle_request(sample);
  const auto sample_b = service.handle_request(sample);
  EXPECT_EQ(sample_a, sample_b);
  EXPECT_EQ(cache->stats().hits, 2u) << "sample must not be memoized";
}

TEST_F(ServiceTest, MetricsOpReturnsPrometheusRendering) {
  obs::set_enabled(true);
  // Serve something first so request-count metrics exist in the scrape.
  service_->handle_request(R"({"v":2,"op":"health"})");
  const auto response = service_->handle_request(R"({"v":2,"op":"metrics"})");
  obs::clear_enabled_override();

  EXPECT_EQ(response.rfind(R"({"v":2,"ok":true,)", 0), 0u) << response;
  EXPECT_NE(response.find(R"("format":"prometheus")"), std::string::npos);
  // The body is one JSON string holding the whole exposition (names
  // sanitized to underscores); the scrape counter is bumped before
  // rendering, so it sees itself.
  EXPECT_NE(response.find("# TYPE serve_request_count counter"),
            std::string::npos);
  EXPECT_NE(response.find("serve_metrics_scrape_count"), std::string::npos);
}

TEST_F(ServiceTest, StatsV2CarriesLatencyAndCacheBreakdown) {
  obs::set_enabled(true);
  const ProtocolCompiler compiler;
  ProtocolService service;
  service.add(compiler.compile(qec::steane()));
  service.set_payload_cache(std::make_shared<serve::PayloadCache>(1u << 20));
  const std::string rate_request =
      R"({"op":"rate","code":"Steane","p":0.01,"shots":1024,"seed":1})";
  service.handle_request(rate_request);
  service.handle_request(rate_request);  // second one is a cache hit

  const auto v2 = service.handle_request(R"({"v":2,"op":"stats"})");
  obs::clear_enabled_override();

  EXPECT_NE(v2.find(R"("obs_enabled":true)"), std::string::npos) << v2;
  // Latency percentiles for every registered op, p50 <= p99 within one
  // snapshot by construction.
  for (const char* op : {"codes", "info", "sample", "rate", "circuit",
                         "health", "stats", "reload", "metrics"}) {
    EXPECT_NE(v2.find("\"" + std::string(op) + "\":{\"count\":"),
              std::string::npos)
        << "missing latency block for " << op << " in " << v2;
  }
  EXPECT_NE(v2.find(R"("p50_us":)"), std::string::npos);
  EXPECT_NE(v2.find(R"("p99_us":)"), std::string::npos);
  // Cache breakdown only for the coalescable ops (sample, rate). The
  // registry is process-global, so assert presence, not exact counts.
  const auto cache_ops_at = v2.find(R"("cache_ops":{)");
  ASSERT_NE(cache_ops_at, std::string::npos) << v2;
  const std::string cache_ops = v2.substr(cache_ops_at);
  EXPECT_NE(cache_ops.find(R"("rate":{"hit":)"), std::string::npos);
  EXPECT_NE(cache_ops.find(R"("sample":{"hit":)"), std::string::npos);
  EXPECT_EQ(cache_ops.find(R"("codes":{"hit":)"), std::string::npos)
      << "codes is never cached; it must not get a cache_ops block";

  // The v1 stats response is frozen: none of the v2 extension fields
  // may appear.
  const auto v1 = service.handle_request(R"({"op":"stats"})");
  EXPECT_EQ(v1.find("obs_enabled"), std::string::npos) << v1;
  EXPECT_EQ(v1.find("latency"), std::string::npos) << v1;
  EXPECT_EQ(v1.find("cache_ops"), std::string::npos) << v1;
}

TEST(PayloadCacheTest, EvictsLruAndTracksBytes) {
  serve::PayloadCache cache(64);
  int computes = 0;
  const auto fill = [&](const std::string& key, std::size_t size) {
    return cache.get_or_compute(key, /*store=*/true, [&] {
      ++computes;
      return std::string(size, 'x');
    });
  };
  // Entry cost is key + payload bytes: 1 + 29 = 30 per entry here, so
  // two fit the 64-byte budget and a third forces an eviction.
  fill("a", 29);
  fill("b", 29);
  EXPECT_EQ(cache.stats().entries, 2u);
  fill("a", 29);  // refresh a's recency
  EXPECT_EQ(cache.stats().hits, 1u);
  fill("c", 29);  // over budget: evicts b (least recent), not a
  EXPECT_EQ(cache.stats().evictions, 1u);
  fill("a", 29);
  EXPECT_EQ(cache.stats().hits, 2u);
  fill("b", 29);  // recompute: b was evicted
  EXPECT_EQ(computes, 4);
  // An oversized payload passes through without occupying the cache.
  fill("huge", 4096);
  EXPECT_LE(cache.stats().bytes, 64u);
}

TEST(PayloadCacheTest, CoalescesConcurrentComputes) {
  serve::PayloadCache cache(0);  // capacity 0: coalescing only
  std::atomic<int> computes{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[t] = cache
                       .get_or_compute("key", /*store=*/false,
                                       [&] {
                                         ++computes;
                                         std::this_thread::sleep_for(
                                             std::chrono::milliseconds(50));
                                         return std::string("payload");
                                       })
                       .payload;
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (const auto& result : results) {
    EXPECT_EQ(result, "payload");
  }
  // At least SOME of the 8 concurrent identical requests must have
  // shared a compute (scheduling may let a late thread miss the
  // window, so exact counts are not asserted).
  EXPECT_LT(computes.load(), kThreads);
  EXPECT_GT(cache.stats().coalesced, 0u);
  // Capacity 0 never stores.
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(PayloadCacheTest, ComputeExceptionsPropagateAndAreNotCached) {
  serve::PayloadCache cache(1024);
  int calls = 0;
  const auto boom = [&]() -> std::string {
    ++calls;
    throw std::runtime_error("boom");
  };
  EXPECT_THROW(cache.get_or_compute("k", true, boom), std::runtime_error);
  EXPECT_THROW(cache.get_or_compute("k", true, boom), std::runtime_error);
  EXPECT_EQ(calls, 2) << "failed compute must not be cached";
  const auto ok =
      cache.get_or_compute("k", true, [] { return std::string("fine"); });
  EXPECT_EQ(ok.payload, "fine");
}

#ifndef _WIN32
int connect_with_retry(const std::string& path) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    path.copy(address.sun_path, path.size());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                  sizeof(address)) == 0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

TEST_F(ServiceTest, SocketServerSurvivesEarlyDisconnectAndAnswers) {
  const std::string path =
      "/tmp/ftsp-test-sock-" + std::to_string(::getpid());
  std::thread server([&] {
    serve_socket(*service_, path, {}, /*max_connections=*/2);
  });

  // Connection 1: send a request and hang up WITHOUT reading the
  // response. The server's write hits a closed peer — it must shrug
  // (EPIPE), not die of SIGPIPE taking every connection with it.
  {
    const int fd = connect_with_retry(path);
    ASSERT_GE(fd, 0) << "could not connect to " << path;
    const std::string request =
        R"({"op":"sample","code":"Steane","p":0.02,"shots":2048})"
        "\n";
    ASSERT_EQ(::write(fd, request.data(), request.size()),
              static_cast<ssize_t>(request.size()));
    ::close(fd);
  }

  // Connection 2: the server must still be alive and correct.
  const int fd = connect_with_retry(path);
  ASSERT_GE(fd, 0) << "server died after the rude client";
  const std::string request = R"({"op":"info","code":"Steane"})"
                              "\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  while (response.find('\n') == std::string::npos) {
    const auto got = ::read(fd, buffer, sizeof(buffer));
    ASSERT_GT(got, 0);
    response.append(buffer, static_cast<std::size_t>(got));
  }
  ::close(fd);
  server.join();
  EXPECT_NE(response.find(R"("ok":true)"), std::string::npos);
  EXPECT_NE(response.find(R"("n":7)"), std::string::npos);
}
#endif

}  // namespace
}  // namespace ftsp::compile
