#include <gtest/gtest.h>

#include <cmath>

#include "core/protocol.hpp"
#include "core/samplers.hpp"
#include "qec/code_library.hpp"
#include "sim/faults.hpp"

namespace ftsp::core {
namespace {

using qec::LogicalBasis;
using sim::LocationKind;
using sim::NoiseParams;

TEST(NoiseParams, E11IsUniform) {
  const auto params = NoiseParams::e1_1(0.01);
  for (double rate : params.rates) {
    EXPECT_DOUBLE_EQ(rate, 0.01);
  }
}

TEST(NoiseParams, LocationKindMapping) {
  EXPECT_EQ(sim::location_kind(circuit::GateKind::Cnot),
            LocationKind::TwoQubit);
  EXPECT_EQ(sim::location_kind(circuit::GateKind::H),
            LocationKind::OneQubit);
  EXPECT_EQ(sim::location_kind(circuit::GateKind::PrepZ),
            LocationKind::Init);
  EXPECT_EQ(sim::location_kind(circuit::GateKind::PrepX),
            LocationKind::Init);
  EXPECT_EQ(sim::location_kind(circuit::GateKind::MeasZ),
            LocationKind::Measurement);
  EXPECT_EQ(sim::location_kind(circuit::GateKind::MeasX),
            LocationKind::Measurement);
}

class BiasedNoiseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    protocol_ = synthesize_protocol(qec::steane(), LogicalBasis::Zero);
    executor_ = std::make_unique<Executor>(protocol_);
    decoder_ = std::make_unique<decoder::PerfectDecoder>(*protocol_.code);
  }
  Protocol protocol_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<decoder::PerfectDecoder> decoder_;
};

TEST_F(BiasedNoiseTest, ZeroRateKindNeverFaults) {
  // Only CNOT faults enabled: measurement/init/1q fault counters stay 0.
  const auto q = NoiseParams::biased(0.0, 0.2, 0.0, 0.0);
  const auto batch =
      sample_protocol_batch(*executor_, *decoder_, q, 500, 11);
  for (const auto& t : batch.trajectories) {
    EXPECT_EQ(t.faults[static_cast<std::size_t>(LocationKind::OneQubit)],
              0u);
    EXPECT_EQ(
        t.faults[static_cast<std::size_t>(LocationKind::Measurement)],
        0u);
    EXPECT_EQ(t.faults[static_cast<std::size_t>(LocationKind::Init)], 0u);
  }
}

TEST_F(BiasedNoiseTest, MeasurementOnlyNoiseIsHarmless) {
  // Pure measurement noise can trigger verifications but never leaves a
  // data error: the logical error rate must be exactly zero (recoveries
  // for bare-flip classes are weight-<=1 and correctable).
  const auto q = NoiseParams::biased(0.0, 0.0, 0.3, 0.0);
  const auto batch =
      sample_protocol_batch(*executor_, *decoder_, q, 3000, 13);
  const auto estimate = estimate_logical_rate({batch}, q);
  EXPECT_LT(estimate.mean, 1e-3);
}

TEST_F(BiasedNoiseTest, ReweightingAcrossBiasAgreesWithDirect) {
  // Sample under uniform elevated noise, re-weight to a CNOT-biased
  // target; compare against directly sampling the biased target.
  const auto target = NoiseParams::biased(0.002, 0.04, 0.01, 0.002);
  const auto direct_batch =
      sample_protocol_batch(*executor_, *decoder_, target, 30000, 17);
  const auto is_batch = sample_protocol_batch(
      *executor_, *decoder_, NoiseParams::e1_1(0.05), 30000, 18);
  const auto direct = estimate_logical_rate({direct_batch}, target);
  const auto reweighted = estimate_logical_rate({is_batch}, target);
  const double sigma =
      4.0 * (direct.std_error + reweighted.std_error) + 1e-9;
  EXPECT_NEAR(direct.mean, reweighted.mean, sigma);
}

TEST_F(BiasedNoiseTest, TwoQubitNoiseDominatesLogicalFailures) {
  // At equal rates, CNOT locations dominate both in count and in spread
  // errors; gate-only noise must produce a higher logical rate than
  // init-only noise at the same strength.
  const auto gates = NoiseParams::biased(0.0, 0.03, 0.0, 0.0);
  const auto inits = NoiseParams::biased(0.0, 0.0, 0.0, 0.03);
  const auto gate_batch =
      sample_protocol_batch(*executor_, *decoder_, gates, 20000, 19);
  const auto init_batch =
      sample_protocol_batch(*executor_, *decoder_, inits, 20000, 20);
  EXPECT_GT(estimate_logical_rate({gate_batch}, gates).mean,
            estimate_logical_rate({init_batch}, inits).mean);
}

TEST_F(BiasedNoiseTest, ImpossibleTargetGetsZeroWeight) {
  // Trajectories with CNOT faults have zero probability under a target
  // with p2 = 0; the estimator must not produce NaN or infinity.
  const auto batch = sample_protocol_batch(
      *executor_, *decoder_, NoiseParams::e1_1(0.1), 5000, 23);
  const auto target = NoiseParams::biased(0.01, 0.0, 0.01, 0.01);
  const auto estimate = estimate_logical_rate({batch}, target);
  EXPECT_TRUE(std::isfinite(estimate.mean));
  EXPECT_TRUE(std::isfinite(estimate.std_error));
}

}  // namespace
}  // namespace ftsp::core
