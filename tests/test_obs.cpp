// The observability subsystem: metric registry semantics, drift-free
// integer percentiles, trace-span nesting and ring bounds, Prometheus
// rendering, the FTSP_OBS kill switch, concurrent hammering (TSan
// tier), and the telemetry-off determinism contract.
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "compile/artifact.hpp"
#include "core/serialize.hpp"
#include "core/synth_cache.hpp"
#include "obs/expose.hpp"
#include "obs/trace.hpp"
#include "qec/code_library.hpp"

namespace ftsp::obs {
namespace {

/// Forces telemetry on (or off) for one test body and restores the
/// environment-driven default on the way out, so test order never
/// leaks an override into another suite.
class ObsOverride {
 public:
  explicit ObsOverride(bool on) { set_enabled(on); }
  ~ObsOverride() { clear_enabled_override(); }
};

TEST(ObsRegistry, CounterGaugeBasics) {
  const ObsOverride on(true);
  auto& registry = Registry::instance();
  Counter& counter = registry.counter("test.obs.counter");
  Gauge& gauge = registry.gauge("test.obs.gauge");
  counter.reset();
  gauge.reset();

  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  gauge.set(-7);
  EXPECT_EQ(gauge.value(), -7);

  // Same name -> same object: registration is idempotent and the
  // reference is stable.
  EXPECT_EQ(&registry.counter("test.obs.counter"), &counter);
  EXPECT_EQ(&registry.gauge("test.obs.gauge"), &gauge);

  counter.reset();
  gauge.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0);
}

TEST(ObsRegistry, DisabledRecordingIsFrozen) {
  const ObsOverride off(false);
  auto& registry = Registry::instance();
  Counter& counter = registry.counter("test.obs.frozen.counter");
  Gauge& gauge = registry.gauge("test.obs.frozen.gauge");
  Histogram& histogram = registry.histogram("test.obs.frozen.hist_us");
  counter.reset();
  gauge.reset();
  histogram.reset();

  counter.add(5);
  gauge.set(5);
  histogram.record(5);
  { const ScopedTimer timer(histogram); }
  { const TraceSpan span("test.obs.frozen.span"); }

  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.sum_us(), 0u);
  EXPECT_EQ(histogram.percentile_us(0.99), 0u);

  // Reads and renders still work while disabled — they just see the
  // frozen state.
  EXPECT_NE(render_prometheus().find("test_obs_frozen_counter"),
            std::string::npos);
}

TEST(ObsHistogram, BucketIndexAndUpperBoundsArePowersOfTwo) {
  // Bucket i holds values <= 2^i µs; the index is exact at every
  // boundary and one past it.
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 0u);
  EXPECT_EQ(Histogram::bucket_index(2), 1u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 2u);
  EXPECT_EQ(Histogram::bucket_index(5), 3u);
  for (std::size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
    const std::uint64_t upper = Histogram::bucket_upper_us(i);
    EXPECT_EQ(upper, std::uint64_t{1} << i);
    EXPECT_EQ(Histogram::bucket_index(upper), i);
    EXPECT_EQ(Histogram::bucket_index(upper + 1), i + 1);
  }
  EXPECT_EQ(Histogram::bucket_upper_us(Histogram::kBuckets - 1),
            std::numeric_limits<std::uint64_t>::max());
  // Anything past the largest finite bucket lands in overflow.
  EXPECT_EQ(Histogram::bucket_index(std::uint64_t{1} << 40),
            Histogram::kBuckets - 1);
}

TEST(ObsHistogram, PercentilesAreExactCumulativeWalks) {
  const ObsOverride on(true);
  Histogram histogram;
  // 90 fast observations (bucket upper bound 1 µs) and 10 slow ones
  // (bucket upper bound 1024 µs): ranks 1..90 resolve to 1, 91..100
  // to 1024.
  for (int i = 0; i < 90; ++i) {
    histogram.record(1);
  }
  for (int i = 0; i < 10; ++i) {
    histogram.record(1000);
  }
  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_EQ(histogram.sum_us(), 90u + 10u * 1000u);
  EXPECT_EQ(histogram.percentile_us(0.50), 1u);
  EXPECT_EQ(histogram.percentile_us(0.90), 1u);
  EXPECT_EQ(histogram.percentile_us(0.91), 1024u);
  EXPECT_EQ(histogram.percentile_us(0.99), 1024u);
  EXPECT_EQ(histogram.percentile_us(1.0), 1024u);
  // Out-of-range quantiles clamp instead of misbehaving.
  EXPECT_EQ(histogram.percentile_us(-1.0), 1u);
  EXPECT_EQ(histogram.percentile_us(2.0), 1024u);
}

TEST(ObsHistogram, PercentileIsMonotoneInQ) {
  const ObsOverride on(true);
  Histogram histogram;
  // A spread of magnitudes; any fixed snapshot must give a
  // non-decreasing percentile curve (the stats v2 p50 <= p99 gate).
  const std::uint64_t values[] = {0, 1, 3, 7, 12, 90, 333, 5000, 70000, 1u << 22};
  for (const auto v : values) {
    histogram.record(v);
  }
  std::uint64_t previous = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const std::uint64_t p = histogram.percentile_us(q);
    EXPECT_GE(p, previous) << "q=" << q;
    previous = p;
  }
  EXPECT_LE(histogram.percentile_us(0.50), histogram.percentile_us(0.99));
}

TEST(ObsRegistry, LabeledBuildsOneSeriesName) {
  EXPECT_EQ(labeled("serve.request.duration_us", "op", "sample"),
            "serve.request.duration_us{op=\"sample\"}");
  // Distinct labels are distinct series of the same family.
  auto& registry = Registry::instance();
  Counter& a = registry.counter(labeled("test.obs.labeled", "op", "a"));
  Counter& b = registry.counter(labeled("test.obs.labeled", "op", "b"));
  EXPECT_NE(&a, &b);
}

TEST(ObsRegistry, SnapshotIsSortedAndComplete) {
  const ObsOverride on(true);
  auto& registry = Registry::instance();
  registry.counter("test.obs.snap.a").reset();
  registry.counter("test.obs.snap.b").add(3);
  registry.histogram("test.obs.snap.hist_us").record(9);

  const auto snap = registry.snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  bool found_counter = false;
  for (const auto& row : snap.counters) {
    if (row.name == "test.obs.snap.b") {
      found_counter = true;
      EXPECT_GE(row.value, 3u);
    }
  }
  EXPECT_TRUE(found_counter);
  bool found_histogram = false;
  for (const auto& row : snap.histograms) {
    if (row.name == "test.obs.snap.hist_us") {
      found_histogram = true;
      EXPECT_GE(row.count, 1u);
      EXPECT_GE(row.sum_us, 9u);
    }
  }
  EXPECT_TRUE(found_histogram);
}

TEST(ObsTrace, SpansNestAndLandInRing) {
  const ObsOverride on(true);
  auto& ring = TraceRing::instance();
  ring.clear();

  std::uint64_t outer_id = 0;
  {
    TraceSpan outer("test.trace.outer");
    ASSERT_TRUE(outer.active());
    outer_id = outer.id();
    { const TraceSpan inner("test.trace.inner"); }
  }

  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner finishes first, so it lands first (oldest-first order).
  EXPECT_EQ(spans[0].name, "test.trace.inner");
  EXPECT_EQ(spans[0].parent_id, outer_id);
  EXPECT_EQ(spans[1].name, "test.trace.outer");
  EXPECT_EQ(spans[1].parent_id, 0u) << "outer span must be a root";
  EXPECT_GE(spans[1].duration_us, spans[0].duration_us);

  const std::string jsonl = ring.export_jsonl();
  EXPECT_NE(jsonl.find("\"name\":\"test.trace.inner\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"test.trace.outer\""), std::string::npos);
  // One JSON object per line.
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
}

TEST(ObsTrace, RingEvictsOldestBeyondCapacity) {
  const ObsOverride on(true);
  auto& ring = TraceRing::instance();
  ring.clear();
  ring.set_capacity(8);

  const std::uint64_t before = ring.total_recorded();
  for (int i = 0; i < 20; ++i) {
    const TraceSpan span("test.trace.ring." + std::to_string(i));
  }
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.total_recorded() - before, 20u);

  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 8u);
  // The survivors are the 8 newest, oldest first.
  EXPECT_EQ(spans.front().name, "test.trace.ring.12");
  EXPECT_EQ(spans.back().name, "test.trace.ring.19");

  ring.set_capacity(TraceRing::kDefaultCapacity);
  ring.clear();
}

TEST(ObsExpose, PrometheusRenderingIsWellFormed) {
  const ObsOverride on(true);
  auto& registry = Registry::instance();
  registry.counter(labeled("test.expose.req", "op", "a")).reset();
  registry.counter(labeled("test.expose.req", "op", "b")).reset();
  registry.counter(labeled("test.expose.req", "op", "a")).add(2);
  registry.counter(labeled("test.expose.req", "op", "b")).add(5);
  Histogram& histogram = registry.histogram("test.expose.dur_us");
  histogram.reset();
  histogram.record(3);
  histogram.record(1000);

  const std::string text = render_prometheus();

  // Dots sanitized to underscores; labels survive.
  EXPECT_NE(text.find("test_expose_req{op=\"a\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("test_expose_req{op=\"b\"} 5\n"), std::string::npos);
  // Exactly one TYPE line per family even with multiple series.
  std::size_t type_lines = 0;
  for (std::size_t at = text.find("# TYPE test_expose_req counter");
       at != std::string::npos;
       at = text.find("# TYPE test_expose_req counter", at + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);

  // Histogram: cumulative buckets ending in +Inf == _count, plus _sum.
  EXPECT_NE(text.find("# TYPE test_expose_dur_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("test_expose_dur_us_bucket{le=\"4\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_expose_dur_us_bucket{le=\"1024\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_expose_dur_us_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_expose_dur_us_sum 1003\n"), std::string::npos);
  EXPECT_NE(text.find("test_expose_dur_us_count 2\n"), std::string::npos);

  const std::string http = render_http_metrics_response();
  EXPECT_EQ(http.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(http.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const auto body_at = http.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = http.substr(body_at + 4);
  EXPECT_NE(http.find("Content-Length: " + std::to_string(body.size())),
            std::string::npos);
}

// TSan tier (CI runs this binary under -fsanitize=thread): writers
// hammer counters, histograms and the span ring while a reader loops
// full renders and snapshots. Correctness bar: no data race, no torn
// registry, and every recorded increment lands.
TEST(ObsConcurrency, HammerRegistryAndRingUnderConcurrentScrape) {
  const ObsOverride on(true);
  auto& registry = Registry::instance();
  auto& ring = TraceRing::instance();
  ring.clear();
  Counter& counter = registry.counter("test.obs.hammer.count");
  Histogram& histogram = registry.histogram("test.obs.hammer.dur_us");
  counter.reset();
  histogram.reset();

  constexpr int kWriters = 4;
  constexpr int kIterations = 2000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const std::string text = render_prometheus();
      EXPECT_FALSE(text.empty());
      (void)registry.snapshot();
      (void)ring.export_jsonl();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kIterations; ++i) {
        counter.add(1);
        histogram.record(static_cast<std::uint64_t>(i % 128));
        const TraceSpan span("test.obs.hammer.span");
        // New-series registration racing established-series updates.
        registry
            .counter(labeled("test.obs.hammer.lane", "lane",
                             std::to_string((w * kIterations + i) % 17)))
            .add(1);
      }
    });
  }
  for (auto& writer : writers) {
    writer.join();
  }
  stop.store(true);
  reader.join();

  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kWriters) * kIterations);
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kWriters) * kIterations);
  EXPECT_LE(ring.size(), ring.capacity());
  ring.clear();
}

// The observation-only contract: synthesizing with telemetry off and
// with telemetry on yields byte-identical protocols and store keys.
// The synth cache is cleared between runs so both actually execute the
// full SAT pipeline.
TEST(ObsDeterminism, TelemetryOffAndOnCompileIdenticalArtifacts) {
  const compile::ProtocolCompiler compiler;

  set_enabled(false);
  core::SynthCache::instance().clear();
  const auto off_artifact = compiler.compile(qec::steane());
  const std::string off_bytes = core::save_protocol(off_artifact.protocol);

  set_enabled(true);
  core::SynthCache::instance().clear();
  const auto on_artifact = compiler.compile(qec::steane());
  const std::string on_bytes = core::save_protocol(on_artifact.protocol);
  clear_enabled_override();

  EXPECT_EQ(off_artifact.key, on_artifact.key)
      << "telemetry must not perturb the artifact store key";
  EXPECT_EQ(off_bytes, on_bytes)
      << "telemetry must not perturb the synthesized protocol";
}

}  // namespace
}  // namespace ftsp::obs
