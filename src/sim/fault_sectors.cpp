#include "sim/fault_sectors.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ftsp::sim {

namespace {

/// Continued-fraction kernel of the incomplete beta function (Lentz's
/// method, as in Numerical Recipes' betacf).
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3e-15;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) {
    d = kTiny;
  }
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) {
      d = kTiny;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) {
      d = kTiny;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) {
      break;
    }
  }
  return h;
}

/// Quantile of Beta(a, b) by bisection on the regularized incomplete
/// beta (monotone, so 80 halvings pin the answer to ~1 ulp of [0,1]).
double beta_quantile(double a, double b, double q) {
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (regularized_incomplete_beta(a, b, mid) < q) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) {
    return 0.0;
  }
  if (x >= 1.0) {
    return 1.0;
  }
  const double log_front = std::lgamma(a + b) - std::lgamma(a) -
                           std::lgamma(b) + a * std::log(x) +
                           b * std::log1p(-x);
  const double front = std::exp(log_front);
  // Use the continued fraction on the side where it converges fast.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

BinomialInterval clopper_pearson(std::uint64_t successes,
                                 std::uint64_t trials, double alpha) {
  if (trials == 0) {
    return {0.0, 1.0};  // No data: the vacuous interval.
  }
  if (successes > trials) {
    throw std::invalid_argument("clopper_pearson: successes > trials");
  }
  const double s = static_cast<double>(successes);
  const double n = static_cast<double>(trials);
  BinomialInterval interval;
  interval.low = successes == 0
                     ? 0.0
                     : beta_quantile(s, n - s + 1.0, alpha / 2.0);
  interval.high = successes == trials
                      ? 1.0
                      : beta_quantile(s + 1.0, n - s, 1.0 - alpha / 2.0);
  return interval;
}

SectorModel::SectorModel(const KindCounts& counts, const NoiseParams& rates)
    : counts_(counts), rates_(rates) {
  double log_clean = 0.0;
  for (std::size_t j = 0; j < kNumLocationKinds; ++j) {
    const double p = rates.rates[j];
    // Negated comparison so NaN fails validation too.
    if (!(p >= 0.0) || p >= 1.0) {
      throw std::invalid_argument("SectorModel: rates must be in [0,1)");
    }
    odds_[j] = p / (1.0 - p);
    total_ += counts_[j];
    log_clean += static_cast<double>(counts_[j]) * std::log1p(-p);
  }
  all_clean_ = std::exp(log_clean);
  esym_.push_back(1.0);  // e_0.
}

bool SectorModel::uniform_rates() const {
  double rate = -1.0;
  for (std::size_t j = 0; j < kNumLocationKinds; ++j) {
    if (counts_[j] == 0) {
      continue;
    }
    if (rate < 0.0) {
      rate = rates_.rates[j];
    } else if (rates_.rates[j] != rate) {
      return false;
    }
  }
  return true;
}

std::vector<double> SectorModel::kind_coefficients(std::uint64_t n,
                                                   double r,
                                                   std::size_t k_max) {
  const std::size_t top = std::min<std::uint64_t>(n, k_max);
  std::vector<double> coeffs(top + 1, 0.0);
  coeffs[0] = 1.0;
  for (std::size_t k = 1; k <= top; ++k) {
    // C(n,k) r^k = C(n,k-1) r^{k-1} * r (n-k+1)/k.
    coeffs[k] = coeffs[k - 1] * r *
                static_cast<double>(n - k + 1) / static_cast<double>(k);
  }
  return coeffs;
}

void SectorModel::grow_coefficients(std::size_t k_max) const {
  if (esym_.size() > k_max) {
    return;
  }
  const std::size_t top = std::min<std::uint64_t>(total_, k_max);
  std::vector<double> poly{1.0};
  for (std::size_t j = 0; j < kNumLocationKinds; ++j) {
    if (counts_[j] == 0 || odds_[j] == 0.0) {
      continue;
    }
    const std::vector<double> kind = kind_coefficients(counts_[j], odds_[j],
                                                       top);
    std::vector<double> next(std::min(poly.size() + kind.size() - 1,
                                      top + 1),
                             0.0);
    for (std::size_t a = 0; a < poly.size(); ++a) {
      for (std::size_t b = 0; b < kind.size() && a + b <= top; ++b) {
        next[a + b] += poly[a] * kind[b];
      }
    }
    poly = std::move(next);
  }
  poly.resize(k_max + 1, 0.0);  // e_k = 0 beyond the location count.
  esym_ = std::move(poly);
}

double SectorModel::elementary_symmetric(std::size_t k) const {
  grow_coefficients(k);
  return esym_[k];
}

std::vector<double> SectorModel::weights(std::size_t k_max) const {
  grow_coefficients(k_max);
  std::vector<double> w(k_max + 1, 0.0);
  for (std::size_t k = 0; k <= k_max; ++k) {
    w[k] = esym_[k] * all_clean_;
  }
  return w;
}

double SectorModel::tail(std::size_t k_max) const {
  double covered = 0.0;
  for (double w : weights(k_max)) {
    covered += w;
  }
  return std::clamp(1.0 - covered, 0.0, 1.0);
}

std::vector<SectorModel::KindSplit> SectorModel::kind_split_cdf(
    std::size_t k) const {
  std::array<std::vector<double>, kNumLocationKinds> kind_coeffs;
  for (std::size_t j = 0; j < kNumLocationKinds; ++j) {
    kind_coeffs[j] = kind_coefficients(counts_[j], odds_[j], k);
  }
  std::vector<KindSplit> cdf;
  double total = 0.0;
  std::array<std::uint32_t, kNumLocationKinds> split{};
  // Enumerate compositions k = k_0 + k_1 + k_2 + k_3 with k_j <= n_j.
  for (std::size_t k0 = 0; k0 < kind_coeffs[0].size() && k0 <= k; ++k0) {
    for (std::size_t k1 = 0; k1 < kind_coeffs[1].size() && k0 + k1 <= k;
         ++k1) {
      for (std::size_t k2 = 0;
           k2 < kind_coeffs[2].size() && k0 + k1 + k2 <= k; ++k2) {
        const std::size_t k3 = k - k0 - k1 - k2;
        if (k3 >= kind_coeffs[3].size()) {
          continue;
        }
        const double weight = kind_coeffs[0][k0] * kind_coeffs[1][k1] *
                              kind_coeffs[2][k2] * kind_coeffs[3][k3];
        if (weight <= 0.0) {
          continue;
        }
        total += weight;
        split = {static_cast<std::uint32_t>(k0),
                 static_cast<std::uint32_t>(k1),
                 static_cast<std::uint32_t>(k2),
                 static_cast<std::uint32_t>(k3)};
        cdf.push_back({split, total});
      }
    }
  }
  if (cdf.empty()) {
    throw std::invalid_argument(
        "SectorModel: sector " + std::to_string(k) +
        " is unreachable (not enough faultable locations)");
  }
  for (KindSplit& entry : cdf) {
    entry.cumulative /= total;
  }
  cdf.back().cumulative = 1.0;  // Guard against rounding at the top end.
  return cdf;
}

}  // namespace ftsp::sim
