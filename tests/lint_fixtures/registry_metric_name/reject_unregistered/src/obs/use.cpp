struct Counter { void add(int); };
Counter& counter(const char*);
void touch() { counter("demo.cache.miss.count").add(1); }
