#pragma once

#include <span>
#include <vector>

#include "sat/solver.hpp"
#include "sat/types.hpp"

namespace ftsp::sat {

/// Encoding helpers layered on top of `Solver`.
///
/// `CnfBuilder` owns nothing; it appends clauses and auxiliary variables to
/// the solver it wraps. All helpers use standard Tseitin-style encodings so
/// the resulting formulas stay equisatisfiable and model values of the
/// returned defined literals are exact.
class CnfBuilder {
 public:
  explicit CnfBuilder(Solver& solver) : solver_(&solver) {}

  Solver& solver() { return *solver_; }

  /// A fresh variable as a positive literal.
  Lit fresh();

  /// Constant literals (lazily created single-valued variables).
  Lit constant(bool value);

  /// Returns a literal equivalent to the XOR (parity) of `inputs`.
  /// Empty input yields constant false. Uses a linear chain of 2-input
  /// XOR definitions.
  Lit xor_of(std::span<const Lit> inputs);
  Lit xor_of(std::initializer_list<Lit> inputs);

  /// Returns a literal equivalent to the AND of `inputs`.
  /// Empty input yields constant true.
  Lit and_of(std::span<const Lit> inputs);
  Lit and_of(std::initializer_list<Lit> inputs);

  /// Returns a literal equivalent to the OR of `inputs`.
  /// Empty input yields constant false.
  Lit or_of(std::span<const Lit> inputs);
  Lit or_of(std::initializer_list<Lit> inputs);

  /// Adds clauses forcing `out <-> a XOR b`.
  void define_xor2(Lit out, Lit a, Lit b);

  /// Adds clauses forcing `a -> b`.
  void add_implies(Lit a, Lit b) { solver_->add_binary(~a, b); }

  /// Adds clauses forcing `a <-> b`.
  void add_equal(Lit a, Lit b);

  /// Adds an at-most-k cardinality constraint over `lits` using the Sinz
  /// sequential-counter encoding. `k == 0` forces all literals false.
  void add_at_most_k(std::span<const Lit> lits, std::size_t k);

  /// Adds an at-least-one constraint (a plain clause).
  void add_at_least_one(std::span<const Lit> lits);

  /// Pairwise at-most-one plus at-least-one.
  void add_exactly_one(std::span<const Lit> lits);

 private:
  Solver* solver_;
  Lit true_lit_ = Lit::undef;
};

}  // namespace ftsp::sat
