#include "circuit/gadgets.hpp"

#include <gtest/gtest.h>

namespace ftsp::circuit {
namespace {

using f2::BitVec;
using qec::PauliType;

TEST(Gadgets, ZTypeUnflaggedStructure) {
  Circuit c(4);
  const auto layout = append_stabilizer_measurement(
      c, BitVec::from_string("1011"), PauliType::Z, /*flagged=*/false);
  EXPECT_EQ(layout.ancilla, 4u);
  EXPECT_EQ(layout.outcome_bit, 0);
  EXPECT_EQ(c.num_qubits(), 5u);
  EXPECT_EQ(c.cnot_count(), 3u);
  // Data qubits control, ancilla is target.
  for (const Gate& g : c.gates()) {
    if (g.kind == GateKind::Cnot) {
      EXPECT_EQ(g.q1, layout.ancilla);
      EXPECT_NE(g.q0, layout.ancilla);
    }
  }
  // Ancilla prepared in |0> and measured in Z.
  EXPECT_EQ(c.gates().front().kind, GateKind::PrepZ);
  EXPECT_EQ(c.gates().back().kind, GateKind::MeasZ);
}

TEST(Gadgets, XTypeReversesRoles) {
  Circuit c(4);
  const auto layout = append_stabilizer_measurement(
      c, BitVec::from_string("1110"), PauliType::X, /*flagged=*/false);
  for (const Gate& g : c.gates()) {
    if (g.kind == GateKind::Cnot) {
      EXPECT_EQ(g.q0, layout.ancilla);  // Ancilla controls.
    }
  }
  EXPECT_EQ(c.gates().front().kind, GateKind::PrepX);
  EXPECT_EQ(c.gates().back().kind, GateKind::MeasX);
}

TEST(Gadgets, FlaggedAddsFlagQubitAndTwoCnots) {
  Circuit c(4);
  const auto layout = append_stabilizer_measurement(
      c, BitVec::from_string("1111"), PauliType::Z, /*flagged=*/true);
  EXPECT_TRUE(layout.flagged);
  EXPECT_EQ(c.num_qubits(), 6u);  // Data + ancilla + flag.
  EXPECT_EQ(c.cnot_count(), 6u);  // 4 data + 2 flag couplings.
  EXPECT_EQ(c.num_cbits(), 2u);
  EXPECT_NE(layout.flag_bit, layout.outcome_bit);
  // Flag of a Z-type gadget is prepared in |+> and read in X.
  std::size_t prep_x_count = 0;
  std::size_t meas_x_count = 0;
  for (const Gate& g : c.gates()) {
    prep_x_count += g.kind == GateKind::PrepX ? 1 : 0;
    meas_x_count += g.kind == GateKind::MeasX ? 1 : 0;
  }
  EXPECT_EQ(prep_x_count, 1u);
  EXPECT_EQ(meas_x_count, 1u);
}

TEST(Gadgets, CustomOrderRespected) {
  Circuit c(4);
  const auto layout = append_stabilizer_measurement(
      c, BitVec::from_string("1110"), PauliType::Z, false, {2, 0, 1});
  std::vector<std::size_t> controls;
  for (const Gate& g : c.gates()) {
    if (g.kind == GateKind::Cnot) {
      controls.push_back(g.q0);
    }
  }
  const std::vector<std::size_t> expected = {2, 0, 1};
  EXPECT_EQ(controls, expected);
  EXPECT_EQ(layout.order, expected);
}

TEST(Gadgets, OrderMustMatchSupport) {
  Circuit c(4);
  EXPECT_THROW(append_stabilizer_measurement(c, BitVec::from_string("1110"),
                                             PauliType::Z, false, {0, 1, 3}),
               std::invalid_argument);
}

TEST(Gadgets, EmptySupportRejected) {
  Circuit c(3);
  EXPECT_THROW(append_stabilizer_measurement(c, BitVec(3), PauliType::Z,
                                             false),
               std::invalid_argument);
}

TEST(Gadgets, FlaggingNeedsWeightThree) {
  Circuit c(3);
  EXPECT_THROW(append_stabilizer_measurement(
                   c, BitVec::from_string("110"), PauliType::Z, true),
               std::invalid_argument);
}

TEST(Gadgets, HookErrorsAreSuffixes) {
  Circuit c(4);
  const auto layout = append_stabilizer_measurement(
      c, BitVec::from_string("1111"), PauliType::Z, /*flagged=*/true);
  const auto hooks = hook_errors(layout, 4);
  ASSERT_EQ(hooks.size(), 3u);  // Cuts 1, 2, 3 of a weight-4 ladder.
  EXPECT_EQ(hooks[0].data_error.to_string(), "0111");
  EXPECT_EQ(hooks[1].data_error.to_string(), "0011");
  EXPECT_EQ(hooks[2].data_error.to_string(), "0001");
  // Standard placement: cuts 1..w-2 are caught, the last cut is not
  // (it is weight 1 and harmless anyway).
  EXPECT_TRUE(hooks[0].caught_by_flag);
  EXPECT_TRUE(hooks[1].caught_by_flag);
  EXPECT_FALSE(hooks[2].caught_by_flag);
}

TEST(Gadgets, UnflaggedHooksNotCaught) {
  Circuit c(4);
  const auto layout = append_stabilizer_measurement(
      c, BitVec::from_string("1111"), PauliType::Z, /*flagged=*/false);
  for (const auto& hook : hook_errors(layout, 4)) {
    EXPECT_FALSE(hook.caught_by_flag);
  }
}

TEST(Gadgets, WeightOneHasNoHooks) {
  Circuit c(2);
  const auto layout = append_stabilizer_measurement(
      c, BitVec::from_string("10"), PauliType::Z, false);
  EXPECT_TRUE(hook_errors(layout, 2).empty());
}

}  // namespace
}  // namespace ftsp::circuit
