#include <gtest/gtest.h>

#include "core/diagnostics.hpp"
#include "core/report.hpp"
#include "core/samplers.hpp"
#include "qec/code_library.hpp"

namespace ftsp::core {
namespace {

using qec::LogicalBasis;

TEST(Report, ContainsAllSections) {
  const auto protocol =
      synthesize_protocol(qec::steane(), LogicalBasis::Zero);
  const std::string report = describe_protocol(protocol);
  EXPECT_NE(report.find("Deterministic FT preparation"), std::string::npos);
  EXPECT_NE(report.find("[[7,1,3]] Steane"), std::string::npos);
  EXPECT_NE(report.find("Preparation: 8 CNOTs"), std::string::npos);
  EXPECT_NE(report.find("Layer 1"), std::string::npos);
  EXPECT_NE(report.find("branches: 1"), std::string::npos);
  EXPECT_NE(report.find("pattern"), std::string::npos);
}

TEST(Report, NeverClaimsUnflaggedDangerousHooks) {
  // Under the default FlagDangerous policy the report must never contain
  // the warning marker.
  for (const char* name : {"Steane", "Shor", "Carbon", "Tesseract"}) {
    const auto protocol = synthesize_protocol(
        qec::library_code_by_name(name), LogicalBasis::Zero);
    const std::string report = describe_protocol(protocol);
    EXPECT_EQ(report.find("UNFLAGGED WITH DANGEROUS HOOKS"),
              std::string::npos)
        << name;
  }
}

TEST(Report, DeferredPolicyIsVisible) {
  SynthesisOptions options;
  options.flag_policy = FlagPolicy::DeferToNextLayer;
  const auto protocol =
      synthesize_protocol(qec::carbon(), LogicalBasis::Zero, options);
  const std::string report = describe_protocol(protocol);
  // Layer-1 hooks deferred to layer 2 show up as the warning marker.
  if (protocol.layer1.has_value() && protocol.layer2.has_value()) {
    EXPECT_NE(report.find("Layer 2"), std::string::npos);
  }
  EXPECT_FALSE(report.empty());
}

TEST(Diagnostics, SingleFaultRegimeIsClean) {
  // At t = 1 a two-fault survey may violate, but a *zero*-fault survey
  // framing: every sampled pair where both faults happen to be benign
  // leaves weight <= 2; here we check the survey runs and counts sanely.
  const auto protocol =
      synthesize_protocol(qec::steane(), LogicalBasis::Zero);
  const Executor executor(protocol);
  const auto survey = survey_two_faults(executor, /*t=*/2, 2000, 9);
  EXPECT_EQ(survey.pairs_checked, 2000u);
  EXPECT_LE(survey.weight_violations, survey.pairs_checked);
  EXPECT_LE(survey.logical_class_residuals, survey.pairs_checked);
}

TEST(Diagnostics, TIsMonotone) {
  // Raising the tolerated weight can only reduce violations.
  const auto protocol =
      synthesize_protocol(qec::surface3(), LogicalBasis::Zero);
  const Executor executor(protocol);
  const auto t1 = survey_two_faults(executor, 1, 1500, 4);
  const auto t2 = survey_two_faults(executor, 2, 1500, 4);
  EXPECT_GE(t1.weight_violations, t2.weight_violations);
}

TEST(Diagnostics, ExactLeadingOrderMatchesSampler) {
  // The exhaustively-enumerated O(p^2) coefficient must (a) report zero
  // single-fault failures (fault tolerance, via the decoder this time)
  // and (b) predict the importance-sampled logical error rate at small p
  // within a modest factor (branch-pair contributions are excluded from
  // c2, so the sampled estimate may sit slightly above).
  const auto protocol =
      synthesize_protocol(qec::steane(), LogicalBasis::Zero);
  const Executor executor(protocol);
  const decoder::PerfectDecoder decoder(*protocol.code);
  const auto leading = exact_leading_order(executor, decoder);
  EXPECT_EQ(leading.single_fault_failures, 0u);
  EXPECT_GT(leading.pairs_enumerated, 1000u);
  EXPECT_GT(leading.c2_x, 0.0);
  EXPECT_GE(leading.c2_any, leading.c2_x);

  const std::vector<TrajectoryBatch> batches = {
      sample_protocol_batch(executor, decoder, 0.05, 30000, 71),
      sample_protocol_batch(executor, decoder, 0.01, 30000, 72)};
  const double p = 1e-3;
  const double sampled = estimate_logical_rate(batches, p).mean;
  const double predicted = leading.c2_x * p * p;
  EXPECT_GT(sampled, 0.3 * predicted);
  EXPECT_LT(sampled, 3.0 * predicted);
}

TEST(Diagnostics, DistanceFourCodesAreMoreRobustToPairs) {
  // d = 4 codes detect weight-2 residuals, so the fraction of two-fault
  // pairs that end in a *logical class* should compare favourably with
  // their violation count; smoke-level sanity only.
  const auto protocol =
      synthesize_protocol(qec::carbon(), LogicalBasis::Zero);
  const Executor executor(protocol);
  const auto survey = survey_two_faults(executor, 2, 1500, 11);
  EXPECT_EQ(survey.pairs_checked, 1500u);
  EXPECT_LT(survey.violation_rate(), 0.5);
}

}  // namespace
}  // namespace ftsp::core
