#include "f2/span.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "f2/gauss.hpp"

namespace ftsp::f2 {
namespace {

TEST(RowSpan, EnumeratesAllElements) {
  const auto m = BitMatrix::from_strings({"1100", "0011"});
  const RowSpan span(m);
  EXPECT_EQ(span.dimension(), 2u);
  EXPECT_EQ(span.size(), 4u);
  std::set<std::string> elements;
  for (const auto& e : span.elements()) {
    elements.insert(e.to_string());
  }
  const std::set<std::string> expected = {"0000", "1100", "0011", "1111"};
  EXPECT_EQ(elements, expected);
}

TEST(RowSpan, FirstElementIsZero) {
  const RowSpan span(BitMatrix::from_strings({"101"}));
  EXPECT_TRUE(span.elements()[0].none());
}

TEST(RowSpan, HandlesDependentRows) {
  const auto m = BitMatrix::from_strings({"110", "011", "101"});
  const RowSpan span(m);
  EXPECT_EQ(span.dimension(), 2u);
  EXPECT_EQ(span.size(), 4u);
}

TEST(RowSpan, EmptyMatrixGivesTrivialSpan) {
  const RowSpan span(BitMatrix(0, 5));
  EXPECT_EQ(span.dimension(), 0u);
  EXPECT_EQ(span.size(), 1u);
  EXPECT_TRUE(span.contains(BitVec(5)));
  EXPECT_FALSE(span.contains(BitVec(5, {2})));
}

TEST(RowSpan, ContainsMatchesEnumeration) {
  const auto m = BitMatrix::from_strings({"11010", "01101"});
  const RowSpan span(m);
  for (const auto& e : span.elements()) {
    EXPECT_TRUE(span.contains(e));
  }
  EXPECT_FALSE(span.contains(BitVec::from_string("10000")));
}

TEST(RowSpan, CosetCanonicalEqualIffSameCoset) {
  const auto m = BitMatrix::from_strings({"1100", "0011"});
  const RowSpan span(m);
  const BitVec a = BitVec::from_string("1000");
  const BitVec b = a ^ span.elements()[3];
  EXPECT_EQ(span.coset_canonical(a), span.coset_canonical(b));
  EXPECT_NE(span.coset_canonical(a),
            span.coset_canonical(BitVec::from_string("0010")));
}

TEST(RowSpan, CosetMinWeightZeroForMembers) {
  const auto m = BitMatrix::from_strings({"111", "010"});
  const RowSpan span(m);
  for (const auto& e : span.elements()) {
    EXPECT_EQ(span.coset_min_weight(e), 0u);
  }
}

TEST(RowSpan, CosetMinWeightKnownCase) {
  // Span {0000, 1111}: the coset of 1110 contains 0001 -> weight 1.
  const RowSpan span(BitMatrix::from_strings({"1111"}));
  EXPECT_EQ(span.coset_min_weight(BitVec::from_string("1110")), 1u);
  EXPECT_EQ(span.coset_min_weight(BitVec::from_string("1100")), 2u);
}

TEST(RowSpan, MinRepresentativeIsInCosetAndMinimal) {
  const auto m = BitMatrix::from_strings({"11110", "00111"});
  const RowSpan span(m);
  const BitVec e = BitVec::from_string("10101");
  const BitVec rep = span.coset_min_representative(e);
  EXPECT_TRUE(span.contains(rep ^ e));
  EXPECT_EQ(rep.popcount(), span.coset_min_weight(e));
}

TEST(RowSpan, ThrowsOnHugeSpan) {
  BitMatrix big(30, 40);
  for (std::size_t i = 0; i < 30; ++i) {
    big.set(i, i);
  }
  EXPECT_THROW(RowSpan{big}, std::length_error);
}

// Property: brute-force coset minimum equals RowSpan's answer on random
// small instances.
class SpanRandomized : public ::testing::TestWithParam<int> {};

TEST_P(SpanRandomized, MinWeightMatchesBruteForce) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  std::uniform_int_distribution<int> bit(0, 1);
  const std::size_t rows = 3;
  const std::size_t cols = 8;
  BitMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.set(r, c, bit(rng) != 0);
    }
  }
  const RowSpan span(m);
  BitVec v(cols);
  for (std::size_t c = 0; c < cols; ++c) {
    v.set(c, bit(rng) != 0);
  }
  std::size_t brute = cols + 1;
  for (const auto& s : span.elements()) {
    brute = std::min(brute, (v ^ s).popcount());
  }
  EXPECT_EQ(span.coset_min_weight(v), brute);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpanRandomized, ::testing::Range(0, 20));

}  // namespace
}  // namespace ftsp::f2
