#include "util/fault_inject.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string_view>
#include <thread>

namespace ftsp::util::fault {

namespace {

/// Trigger kinds for one armed rule. kNth fires exactly once, on the
/// Nth hit of the site; kProb draws per hit; kAlways fires every hit.
enum class Trigger { kAlways, kNth, kProb };

struct Rule {
  Action action;
  Trigger trigger = Trigger::kAlways;
  std::uint64_t nth = 0;     // 1-based, Trigger::kNth
  double probability = 0.0;  // Trigger::kProb
};

struct SiteState {
  Rule rule;
  std::uint64_t hits = 0;
};

struct Plan {
  std::map<std::string, SiteState, std::less<>> sites;
  // ftsp-lint: allow(det-unseeded-rng) parse_plan() seeds it from FTSP_FAULTS_SEED
  std::mt19937_64 rng;
};

[[noreturn]] void parse_fail(const std::string& plan,
                             const std::string& why) {
  throw std::runtime_error("FTSP_FAULTS: " + why + " in plan \"" + plan +
                           "\"");
}

std::uint64_t parse_uint(const std::string& plan, const std::string& text,
                         const char* what) {
  if (text.empty()) {
    parse_fail(plan, std::string("empty ") + what);
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      parse_fail(plan, std::string("non-numeric ") + what + " \"" + text +
                           "\"");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

/// Parses one plan string into armed sites. First rule per site wins;
/// duplicates are rejected loudly so a typo'd schedule can't silently
/// drop half its faults.
Plan parse_plan(const std::string& plan, std::uint64_t seed) {
  Plan parsed;
  parsed.rng.seed(seed);
  std::size_t pos = 0;
  while (pos < plan.size()) {
    std::size_t end = plan.find(',', pos);
    if (end == std::string::npos) {
      end = plan.size();
    }
    const std::string entry = plan.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) {
      continue;
    }
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0) {
      parse_fail(plan, "missing site name in \"" + entry + "\"");
    }
    const std::string site = entry.substr(0, colon);
    std::string action_text = entry.substr(colon + 1);
    Rule rule;
    const std::size_t at = action_text.find('@');
    if (at != std::string::npos) {
      const std::string trigger = action_text.substr(at + 1);
      action_text.resize(at);
      if (trigger.empty()) {
        parse_fail(plan, "empty trigger in \"" + entry + "\"");
      }
      if (trigger[0] == 'p') {
        rule.trigger = Trigger::kProb;
        char* parse_end = nullptr;
        rule.probability = std::strtod(trigger.c_str() + 1, &parse_end);
        if (parse_end == nullptr || *parse_end != '\0' ||
            rule.probability < 0.0 || rule.probability > 1.0) {
          parse_fail(plan, "bad probability in \"" + entry + "\"");
        }
      } else {
        rule.trigger = Trigger::kNth;
        rule.nth = parse_uint(plan, trigger, "trigger");
        if (rule.nth == 0) {
          parse_fail(plan, "trigger @0 never fires in \"" + entry + "\"");
        }
      }
    }
    if (action_text == "fail") {
      rule.action.fail = true;
    } else if (action_text.rfind("delay=", 0) == 0) {
      std::string ms = action_text.substr(6);
      if (ms.size() < 3 || ms.substr(ms.size() - 2) != "ms") {
        parse_fail(plan, "delay needs a ms suffix in \"" + entry + "\"");
      }
      ms.resize(ms.size() - 2);
      rule.action.delay =
          std::chrono::milliseconds(parse_uint(plan, ms, "delay"));
    } else {
      parse_fail(plan, "unknown action \"" + action_text + "\"");
    }
    if (!parsed.sites.emplace(site, SiteState{rule, 0}).second) {
      parse_fail(plan, "duplicate rule for site \"" + site + "\"");
    }
  }
  return parsed;
}

std::uint64_t env_seed() {
  const char* env = std::getenv("FTSP_FAULTS_SEED");
  if (env == nullptr || *env == '\0') {
    return 1;
  }
  return std::strtoull(env, nullptr, 10);
}

/// -1 = no override (environment decides), 0 = forced off (empty test
/// plan), 1 = test plan installed. Mirrors the FTSP_OBS gate: `hit` is
/// one relaxed load plus one getenv-backed static when nothing is
/// armed.
std::atomic<int> g_plan_override{-1};

std::mutex g_plan_mutex;
std::unique_ptr<Plan> g_plan;  // guarded by g_plan_mutex

const char* env_plan_text() {
  static const char* value = [] {
    const char* env = std::getenv("FTSP_FAULTS");
    return (env != nullptr && *env != '\0') ? env : nullptr;
  }();
  return value;
}

/// The armed plan, or nullptr when injection is off. Parses the
/// environment plan on first armed use (holding the mutex).
Plan* active_plan_locked() {
  if (g_plan == nullptr) {
    const char* env = env_plan_text();
    if (env == nullptr) {
      return nullptr;
    }
    g_plan = std::make_unique<Plan>(parse_plan(env, env_seed()));
  }
  return g_plan.get();
}

}  // namespace

bool enabled() {
  const int override_value = g_plan_override.load(std::memory_order_relaxed);
  if (override_value >= 0) {
    return override_value != 0;
  }
  return env_plan_text() != nullptr;
}

Action hit(const char* site) {
  if (!enabled()) {
    return Action{};
  }
  Action fired;
  {
    std::lock_guard<std::mutex> lock(g_plan_mutex);
    Plan* plan = active_plan_locked();
    if (plan == nullptr) {
      return Action{};
    }
    const auto it = plan->sites.find(std::string_view(site));
    if (it == plan->sites.end()) {
      return Action{};
    }
    SiteState& state = it->second;
    ++state.hits;
    bool fire = false;
    switch (state.rule.trigger) {
      case Trigger::kAlways:
        fire = true;
        break;
      case Trigger::kNth:
        fire = state.hits == state.rule.nth;
        break;
      case Trigger::kProb: {
        std::uniform_real_distribution<double> draw(0.0, 1.0);
        fire = draw(plan->rng) < state.rule.probability;
        break;
      }
    }
    if (fire) {
      fired = state.rule.action;
    }
  }
  if (fired.delay.count() > 0) {
    std::this_thread::sleep_for(fired.delay);
  }
  return fired;
}

bool should_fail(const char* site) { return hit(site).fail; }

void maybe_throw(const char* site, const char* what) {
  if (should_fail(site)) {
    throw InjectedFault(std::string(what) + ": injected fault at " + site);
  }
}

void set_plan(const std::string& plan) {
  // Parse outside the lock so a malformed plan leaves the old one armed.
  std::unique_ptr<Plan> parsed;
  if (!plan.empty()) {
    parsed = std::make_unique<Plan>(parse_plan(plan, env_seed()));
  }
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  g_plan = std::move(parsed);
  g_plan_override.store(g_plan != nullptr ? 1 : 0,
                        std::memory_order_relaxed);
}

void clear_plan() {
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  g_plan.reset();
  g_plan_override.store(-1, std::memory_order_relaxed);
}

std::uint64_t hit_count(const char* site) {
  if (!enabled()) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  Plan* plan = active_plan_locked();
  if (plan == nullptr) {
    return 0;
  }
  const auto it = plan->sites.find(std::string_view(site));
  return it == plan->sites.end() ? 0 : it->second.hits;
}

}  // namespace ftsp::util::fault
