#pragma once

#include <cstdint>
#include <vector>

#include "qec/css_code.hpp"
#include "qec/pauli.hpp"

namespace ftsp::qec {

/// Hamming-weight histogram: `counts[w]` = number of group elements of
/// weight w. Size is n+1.
struct WeightDistribution {
  std::vector<std::uint64_t> counts;

  std::uint64_t total() const;
  /// Smallest nonzero weight with a nonzero count (0 if only identity).
  std::size_t min_nonzero_weight() const;
};

/// Weight distribution of the type-t stabilizer span of the code
/// (2^r elements, including the identity).
WeightDistribution stabilizer_weight_distribution(const CssCode& code,
                                                  PauliType t);

/// Weight distribution of the type-t normalizer (stabilizers plus all
/// logical cosets of the same type): the kernel of the opposite check
/// matrix, 2^(r+k) elements.
WeightDistribution normalizer_weight_distribution(const CssCode& code,
                                                  PauliType t);

/// The code's type-t distance computed from the enumerators: the minimal
/// weight in the normalizer that is not attained by a stabilizer coset,
/// i.e. min weight over N(S) \ S. Cross-validates
/// `CssCode::distance_x/z` by an independent route.
std::size_t distance_from_enumerators(const CssCode& code, PauliType t);

}  // namespace ftsp::qec
