#include "core/ft_check.hpp"

#include <sstream>

#include "core/executor.hpp"
#include "sim/faults.hpp"

namespace ftsp::core {

using qec::PauliType;

FtCheckResult check_fault_tolerance(const Protocol& protocol,
                                    std::size_t max_violations) {
  FtCheckResult result;
  const Executor executor(protocol);
  const qec::StateContext& state = *protocol.state;

  const auto record = [&](const std::string& what) {
    result.ok = false;
    if (result.violations.size() < max_violations) {
      result.violations.push_back(what);
    }
  };

  // Fault-free run: nothing triggers, no residual.
  {
    const auto clean = executor.run([](const SiteRef&) { return -1; });
    if (clean.any_trigger || !clean.data_error.is_identity()) {
      record("fault-free run triggered a verification or left an error");
    }
  }

  // Always-executed segments.
  std::vector<const circuit::Circuit*> segments = {&protocol.prep};
  for (const auto* layer : {&protocol.layer1, &protocol.layer2}) {
    if (layer->has_value()) {
      segments.push_back(&(*layer)->verif);
    }
  }

  for (const circuit::Circuit* segment : segments) {
    const auto sites = sim::enumerate_fault_sites(*segment);
    for (const auto& site : sites) {
      for (std::size_t op = 0; op < site.ops.size(); ++op) {
        bool injected = false;
        const auto run = executor.run([&](const SiteRef& ref) -> int {
          if (!injected && ref.segment == segment &&
              ref.gate_index == site.gate_index) {
            injected = true;
            return static_cast<int>(op);
          }
          return -1;
        });
        ++result.faults_checked;
        const std::size_t wx =
            state.reduced_weight(PauliType::X, run.data_error.x);
        const std::size_t wz =
            state.reduced_weight(PauliType::Z, run.data_error.z);
        if (wx > 1 || wz > 1) {
          std::ostringstream what;
          what << "fault at gate " << site.gate_index << " op " << op
               << " of segment with " << segment->gate_count()
               << " gates leaves residual X:" << run.data_error.x.to_string()
               << " (wt_S " << wx << ") Z:" << run.data_error.z.to_string()
               << " (wt_S " << wz << ")";
          record(what.str());
        }
      }
    }
  }
  return result;
}

}  // namespace ftsp::core
