#pragma once

#include <cstddef>

#include "core/metrics.hpp"
#include "core/protocol.hpp"

namespace ftsp::core {

/// Options for the paper's "Global" optimization procedure: enumerate all
/// (u, v)-optimal verification sets for each layer and every flag policy,
/// synthesize the corrections for each combination, and keep the protocol
/// with the best metrics.
struct GlobalOptOptions {
  SynthesisOptions synthesis;
  std::size_t max_layer1_sets = 24;
  std::size_t max_layer2_sets = 8;  ///< Per layer-1 candidate.
  bool explore_flag_policies = true;
  /// Run the exhaustive FT check on every candidate (a safety net against
  /// synthesis regressions; synthesis is correct by construction, so this
  /// can be disabled for speed in large sweeps).
  bool validate_candidates = true;
};

struct GlobalOptResult {
  Protocol best;
  ProtocolMetrics best_metrics;
  std::size_t candidates_explored = 0;
};

/// Runs the global optimization. Candidates are scored lexicographically
/// by (total verification ancillas, total verification CNOTs, average
/// correction ancillas, average correction CNOTs), matching the cost
/// notion of Table I.
GlobalOptResult globally_optimize(const qec::CssCode& code,
                                  qec::LogicalBasis basis,
                                  const GlobalOptOptions& options = {});

}  // namespace ftsp::core
