#include "core/global_opt.hpp"

#include <gtest/gtest.h>

#include "core/ft_check.hpp"
#include "qec/code_library.hpp"

namespace ftsp::core {
namespace {

using qec::LogicalBasis;

TEST(GlobalOpt, SteaneGlobalMatchesDirectSynthesis) {
  // The Steane protocol is already unique-optimal; global search must
  // return the same metrics.
  const auto direct = compute_metrics(
      synthesize_protocol(qec::steane(), LogicalBasis::Zero));
  const auto result = globally_optimize(qec::steane(), LogicalBasis::Zero);
  EXPECT_GE(result.candidates_explored, 1u);
  EXPECT_EQ(result.best_metrics.total_verif_ancillas,
            direct.total_verif_ancillas);
  EXPECT_EQ(result.best_metrics.total_verif_cnots,
            direct.total_verif_cnots);
  EXPECT_LE(result.best_metrics.avg_corr_cnots, direct.avg_corr_cnots);
}

TEST(GlobalOpt, NeverWorseThanDefault) {
  for (const char* name : {"Shor", "Surface_3"}) {
    const auto code = qec::library_code_by_name(name);
    const auto direct =
        compute_metrics(synthesize_protocol(code, LogicalBasis::Zero));
    const auto result = globally_optimize(code, LogicalBasis::Zero);
    // Lexicographic score comparison.
    const auto as_tuple = [](const ProtocolMetrics& m) {
      return std::make_tuple(m.total_verif_ancillas, m.total_verif_cnots,
                             m.avg_corr_ancillas, m.avg_corr_cnots);
    };
    EXPECT_LE(as_tuple(result.best_metrics), as_tuple(direct)) << name;
  }
}

TEST(GlobalOpt, BestCandidateIsFaultTolerant) {
  const auto result = globally_optimize(qec::shor(), LogicalBasis::Zero);
  EXPECT_TRUE(check_fault_tolerance(result.best).ok);
}

TEST(GlobalOpt, ExploresMultipleCandidatesWhenAvailable) {
  GlobalOptOptions options;
  options.max_layer1_sets = 16;
  const auto result =
      globally_optimize(qec::shor(), LogicalBasis::Zero, options);
  EXPECT_GE(result.candidates_explored, 2u);
}

TEST(GlobalOpt, FlagPolicyExplorationCanBeDisabled) {
  GlobalOptOptions with;
  with.explore_flag_policies = true;
  GlobalOptOptions without;
  without.explore_flag_policies = false;
  const auto a = globally_optimize(qec::shor(), LogicalBasis::Zero, with);
  const auto b =
      globally_optimize(qec::shor(), LogicalBasis::Zero, without);
  EXPECT_GE(a.candidates_explored, b.candidates_explored);
}

}  // namespace
}  // namespace ftsp::core
