#include "core/executor.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/protocol.hpp"
#include "qec/code_library.hpp"

namespace ftsp::core {
namespace {

using qec::LogicalBasis;
using qec::PauliType;

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    protocol_ = synthesize_protocol(qec::steane(), LogicalBasis::Zero);
  }
  Protocol protocol_;
};

TEST_F(ExecutorTest, CleanRunIsSilent) {
  const Executor executor(protocol_);
  const auto result = executor.run([](const SiteRef&) { return -1; });
  EXPECT_TRUE(result.data_error.is_identity());
  EXPECT_FALSE(result.any_trigger);
  EXPECT_FALSE(result.hook_terminated);
  EXPECT_EQ(result.faults_injected, 0u);
  EXPECT_GT(result.sites_executed, 0u);
}

TEST_F(ExecutorTest, CleanRunExecutesOnlyAlwaysOnSegments) {
  const Executor executor(protocol_);
  const auto result = executor.run([](const SiteRef&) { return -1; });
  std::size_t expected = protocol_.prep.gate_count();
  if (protocol_.layer1.has_value()) {
    expected += protocol_.layer1->verif.gate_count();
  }
  if (protocol_.layer2.has_value()) {
    expected += protocol_.layer2->verif.gate_count();
  }
  EXPECT_EQ(result.sites_executed, expected);
}

TEST_F(ExecutorTest, InjectedFaultIsCounted) {
  const Executor executor(protocol_);
  bool first = true;
  const auto result = executor.run([&](const SiteRef& ref) -> int {
    if (first && ref.segment == &protocol_.prep &&
        !ref.site->ops.empty()) {
      first = false;
      return 0;
    }
    return -1;
  });
  EXPECT_EQ(result.faults_injected, 1u);
}

TEST_F(ExecutorTest, TriggeredBranchRunsExtraSites) {
  const Executor executor(protocol_);
  // Find a fault that triggers the verification: an X fault on the last
  // prep CNOT's control typically spreads and must trigger.
  std::size_t clean_sites = 0;
  {
    const auto clean = executor.run([](const SiteRef&) { return -1; });
    clean_sites = clean.sites_executed;
  }
  bool found_trigger = false;
  const auto& sites = sim::enumerate_fault_sites(protocol_.prep);
  for (const auto& site : sites) {
    for (std::size_t op = 0; op < site.ops.size() && !found_trigger;
         ++op) {
      bool injected = false;
      const auto result = executor.run([&](const SiteRef& ref) -> int {
        if (!injected && ref.segment == &protocol_.prep &&
            ref.gate_index == site.gate_index) {
          injected = true;
          return static_cast<int>(op);
        }
        return -1;
      });
      if (result.any_trigger) {
        found_trigger = true;
        EXPECT_GE(result.sites_executed, clean_sites);
      }
    }
  }
  EXPECT_TRUE(found_trigger);
}

TEST_F(ExecutorTest, UnknownPatternsDoNotCrash) {
  // Heavy random noise produces multi-fault patterns outside the branch
  // table; the executor must run through regardless.
  const Executor executor(protocol_);
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int run = 0; run < 200; ++run) {
    const auto result = executor.run([&](const SiteRef& ref) -> int {
      if (unit(rng) < 0.25) {
        return static_cast<int>(rng() % ref.site->ops.size());
      }
      return -1;
    });
    (void)result;
  }
  SUCCEED();
}

TEST(ExecutorHook, HookTerminationSkipsSecondLayer) {
  // Pick a code with two layers and a flagged layer-1 measurement, then
  // inject a hook (Z on the flagged gadget's ancilla mid-ladder).
  for (const char* name : {"Carbon", "[[16,2,4]]", "Tesseract", "Shor"}) {
    const auto protocol = synthesize_protocol(
        qec::library_code_by_name(name), LogicalBasis::Zero);
    if (!protocol.layer1.has_value() || !protocol.layer2.has_value() ||
        protocol.layer1->flag_mask.none()) {
      continue;
    }
    const Executor executor(protocol);
    const auto& l1 = *protocol.layer1;
    // Find a flagged gadget and the gate index of its second data CNOT.
    const circuit::GadgetLayout* flagged = nullptr;
    for (const auto& g : l1.gadgets) {
      if (g.flagged) {
        flagged = &g;
        break;
      }
    }
    ASSERT_NE(flagged, nullptr) << name;
    // Locate the second data CNOT of that gadget in the layer circuit.
    std::size_t data_cnots = 0;
    std::size_t target_gate = SIZE_MAX;
    for (std::size_t g = 0; g < l1.verif.gates().size(); ++g) {
      const auto& gate = l1.verif.gates()[g];
      if (gate.kind == circuit::GateKind::Cnot &&
          (gate.q0 == flagged->ancilla || gate.q1 == flagged->ancilla) &&
          gate.q0 != flagged->flag_qubit &&
          gate.q1 != flagged->flag_qubit) {
        ++data_cnots;
        if (data_cnots == 2) {
          target_gate = g;
          break;
        }
      }
    }
    ASSERT_NE(target_gate, SIZE_MAX) << name;
    // Find the Z-on-ancilla op for that CNOT.
    const auto sites = sim::enumerate_fault_sites(l1.verif);
    const auto& ops = sites[target_gate].ops;
    int z_op = -1;
    const auto& gate = l1.verif.gates()[target_gate];
    const std::size_t anc_slot = gate.q0 == flagged->ancilla ? 0u : 1u;
    for (std::size_t o = 0; o < ops.size(); ++o) {
      if (ops[o].num_terms == 1 &&
          ops[o].terms[0].qubit ==
              (anc_slot == 0 ? gate.q0 : gate.q1) &&
          !ops[o].terms[0].x && ops[o].terms[0].z) {
        z_op = static_cast<int>(o);
        break;
      }
    }
    ASSERT_GE(z_op, 0) << name;

    bool injected = false;
    const auto result = executor.run([&](const SiteRef& ref) -> int {
      if (!injected && ref.segment == &l1.verif &&
          ref.gate_index == target_gate) {
        injected = true;
        return z_op;
      }
      return -1;
    });
    // The hook must be flagged and terminate the protocol; residual must
    // be correctable.
    EXPECT_TRUE(result.hook_terminated) << name;
    EXPECT_LE(protocol.state->reduced_weight(PauliType::Z,
                                             result.data_error.z),
              1u)
        << name;
    return;  // One code with this structure suffices.
  }
  GTEST_SKIP() << "no two-layer code with flagged layer 1 in this library";
}

}  // namespace
}  // namespace ftsp::core
