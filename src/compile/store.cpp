#include "compile/store.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#else
#include <process.h>
#endif

#include "compile/format.hpp"
#include "core/synth_cache.hpp"
#include "util/binio.hpp"
#include "util/fault_inject.hpp"

namespace ftsp::compile {

namespace fs = std::filesystem;

namespace {

constexpr const char* kIndexName = "index.tsv";
constexpr const char* kSatCacheDir = "satcache";
constexpr const char* kQuarantineDir = "quarantine";

namespace fault = util::fault;

/// Durability half of the temp-file + rename pattern: rename alone makes
/// the *name* transition atomic, but nothing orders the data blocks
/// before the metadata — after a crash the new name can point at a
/// zero-length or partial file. fsync the payload before the rename and
/// the containing directory after it. Best effort on purpose (returns
/// false instead of throwing): an fsync failure on an exotic filesystem
/// must not break a store that worked before this hardening, and the
/// rename path already detects genuinely unwritable directories.
bool sync_file(const std::string& path) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;  // std::ofstream close flushed; no cheap fsync handle here.
#endif
}

bool sync_parent_dir(const std::string& path) {
#ifndef _WIN32
  const std::string parent = fs::path(path).parent_path().string();
  const int fd =
      ::open(parent.empty() ? "." : parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;
#endif
}

/// One crash-safe publish: fsync the finished temp file, rename it over
/// `path`, fsync the directory so the rename itself is durable. The
/// `store.fsync` / `store.rename` injection sites let the crash tests
/// park a writer between the write and the publish (delay) or force the
/// error paths (fail). Throws ArtifactFormatError, cleaning up the temp.
void publish_tmp(const std::string& tmp, const std::string& path,
                 const char* what) {
  if (fault::should_fail("store.fsync") || !sync_file(tmp)) {
    std::error_code cleanup;
    fs::remove(tmp, cleanup);
    throw ArtifactFormatError(std::string("store: cannot sync ") + what);
  }
  std::error_code ec;
  if (fault::should_fail("store.rename")) {
    ec = std::make_error_code(std::errc::io_error);
  } else {
    fs::rename(tmp, path, ec);
  }
  if (ec) {
    std::error_code cleanup;
    fs::remove(tmp, cleanup);
    throw ArtifactFormatError(std::string("store: cannot replace ") + what +
                              ": " + ec.message());
  }
  sync_parent_dir(path);  // Advisory: the name flip is already atomic.
}

/// A writer-unique "<path>.<pid>.<tick>.<serial>.tmp" name (extension
/// stays .tmp so prune() reclaims leftovers). A shared fixed temp name
/// would let two concurrent writers interleave into one file and
/// publish a torn rename; pid makes the name unique across processes,
/// the serial across threads, the tick across process restarts reusing
/// a pid.
std::string unique_tmp_path(const std::string& path) {
  static std::atomic<std::uint64_t> serial{0};
#ifndef _WIN32
  const unsigned long long pid = static_cast<unsigned long long>(::getpid());
#else
  const unsigned long long pid = static_cast<unsigned long long>(::_getpid());
#endif
  return path + "." + std::to_string(pid) + "." +
         std::to_string(
             std::chrono::steady_clock::now().time_since_epoch().count()) +
         "." + std::to_string(serial.fetch_add(1)) + ".tmp";
}

std::string hash_name(const std::string& key, const char* extension) {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx%s",
                static_cast<unsigned long long>(core::cache_key_hash(key)),
                extension);
  return name;
}

/// satcache entry file: length-prefixed key (ByteWriter::str framing),
/// then the value bytes to EOF. The key is stored (not just its hash)
/// so collisions degrade to a miss, never to a wrong value. Written via
/// temp-file + rename so a concurrent reader sees either the old
/// complete entry or the new one, never a torn half-write.
void write_kv_file(const std::string& path, const std::string& key,
                   const std::string& value) {
  util::ByteWriter entry;
  entry.str(key);
  entry.raw(value);
  const std::string tmp = unique_tmp_path(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return;  // Best effort: a failed write-through must not fail synthesis.
    }
    out.write(entry.bytes().data(),
              static_cast<std::streamsize>(entry.bytes().size()));
    if (!out) {
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);  // Best effort, atomic when it succeeds.
}

std::optional<std::string> read_kv_file(const std::string& path,
                                        const std::string& key) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream bytes;
  bytes << in.rdbuf();
  const std::string content = bytes.str();
  try {
    util::ByteReader reader(content);
    if (reader.str() != key) {
      return std::nullopt;  // Hash collision: treat as a miss.
    }
    return std::string(reader.raw(reader.remaining()));
  } catch (const std::out_of_range&) {
    return std::nullopt;  // Truncated/corrupt entry degrades to a miss.
  }
}

}  // namespace

ArtifactStore::ArtifactStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(fs::path(dir_) / kSatCacheDir, ec);
  if (ec) {
    throw ArtifactFormatError("store: cannot create " + dir_ + ": " +
                              ec.message());
  }
  load_index();
}

std::string ArtifactStore::artifact_path(const std::string& filename) const {
  return (fs::path(dir_) / filename).string();
}

void ArtifactStore::load_index() {
  std::ifstream in((fs::path(dir_) / kIndexName).string());
  if (!in) {
    return;  // Fresh store.
  }
  // Recovery mode: a reader must be able to open whatever a crashed or
  // concurrent writer left behind, so a malformed line (no tab, empty
  // filename, empty key — a torn write) is skipped with a warning and
  // counted, never thrown. One torn byte used to brick every load and
  // hot reload of the whole store. Writer paths stay loud: put() still
  // throws on anything it cannot persist completely.
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    const auto tab = line.find('\t');
    const char* reason = nullptr;
    if (tab == std::string::npos) {
      reason = "no tab separator";
    } else if (tab == 0) {
      reason = "empty filename";
    } else if (tab + 1 >= line.size()) {
      reason = "empty key";
    }
    if (reason != nullptr) {
      std::fprintf(stderr,
                   "ftsp: store %s: skipping malformed index line %zu (%s)\n",
                   dir_.c_str(), line_number, reason);
      ++recovery_.malformed_index_lines;
      continue;
    }
    index_.emplace(line.substr(tab + 1), line.substr(0, tab));
  }
}

void ArtifactStore::save_index_locked(const std::string* drop_key) const {
  const std::string path = (fs::path(dir_) / kIndexName).string();
  // Merge-on-write: re-read the on-disk index and overlay our in-memory
  // entries on top of it. Two processes compiling into one directory
  // each preserve the other's entries — the historical whole-rewrite was
  // last-writer-wins and silently dropped concurrent keys. (A write
  // landing between our read and our rename can still lose that one
  // race, but the window shrinks from "the whole process lifetime" to
  // one read-modify-rename; both contended entries' artifact files are
  // on disk either way, so the next put or an index rebuild restores
  // them.)
  // Malformed lines are skipped here exactly like load_index's recovery
  // mode: a concurrent writer's torn line must not make every subsequent
  // put in this process fail forever. The skipped line's artifact file
  // stays on disk for a rebuild.
  std::map<std::string, std::string> merged;
  {
    std::ifstream in(path);
    std::string line;
    while (in && std::getline(in, line)) {
      const auto tab = line.find('\t');
      if (tab != std::string::npos && tab > 0 && tab + 1 < line.size()) {
        merged[line.substr(tab + 1)] = line.substr(0, tab);
      }
    }
  }
  for (const auto& [key, filename] : index_) {
    merged[key] = filename;
  }
  // A quarantined key must not be resurrected by the merge: its on-disk
  // entry is exactly what we are removing.
  if (drop_key != nullptr) {
    merged.erase(*drop_key);
  }

  const std::string tmp = unique_tmp_path(path);
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out || fault::should_fail("store.write")) {
      std::error_code cleanup;
      out.close();
      fs::remove(tmp, cleanup);
      throw ArtifactFormatError("store: cannot write index in " + dir_);
    }
    for (const auto& [key, filename] : merged) {
      out << filename << '\t' << key << '\n';
    }
    out.flush();
    if (!out) {
      std::error_code cleanup;
      out.close();
      fs::remove(tmp, cleanup);
      throw ArtifactFormatError("store: short write to index in " + dir_);
    }
  }
  publish_tmp(tmp, path, "index");
}

void ArtifactStore::put(const ProtocolArtifact& artifact) {
  if (artifact.key.empty()) {
    throw ArtifactFormatError("store: artifact has an empty key");
  }
  const std::string filename = hash_name(artifact.key, ".ftsa");
  const std::string bytes = encode_artifact(artifact);
  // Writer-unique temp + rename: concurrent readers see either the
  // previous complete artifact or the new one, never a truncated
  // container — and two writers racing on the *same key* each publish a
  // complete file instead of truncating each other's shared temp.
  const std::string path = artifact_path(filename);
  const std::string tmp = unique_tmp_path(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || fault::should_fail("store.write")) {
      std::error_code cleanup;
      out.close();
      fs::remove(tmp, cleanup);
      throw ArtifactFormatError("store: cannot write " + filename);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code cleanup;
      out.close();
      fs::remove(tmp, cleanup);
      throw ArtifactFormatError("store: short write to " + filename);
    }
  }
  publish_tmp(tmp, path, filename.c_str());

  // Proof sidecar (see the header contract): write when the artifact
  // carries bytes, remove a stale one when it carries no proof entries
  // at all, and leave an existing sidecar alone for metadata-only
  // round-trips (a decoded artifact whose bytes were never rehydrated
  // must not clobber the good sidecar with an empty one).
  const std::string proof_path =
      artifact_path(hash_name(artifact.key, ".proof"));
  const std::string sidecar = encode_proof_sidecar(artifact);
  if (!sidecar.empty()) {
    const std::string proof_tmp = unique_tmp_path(proof_path);
    bool written = false;
    {
      std::ofstream out(proof_tmp, std::ios::binary | std::ios::trunc);
      if (out && !fault::should_fail("store.write")) {
        out.write(sidecar.data(),
                  static_cast<std::streamsize>(sidecar.size()));
        out.flush();
        written = static_cast<bool>(out);
      }
    }
    if (!written) {
      std::error_code cleanup;
      fs::remove(proof_tmp, cleanup);
      throw ArtifactFormatError("store: cannot write proof sidecar for " +
                                filename);
    }
    publish_tmp(proof_tmp, proof_path, "proof sidecar");
  } else if (artifact.proofs.empty()) {
    std::error_code remove_ec;
    fs::remove(proof_path, remove_ec);  // Stale sidecar of a prior compile.
  }

  std::lock_guard<std::mutex> lock(mutex_);
  index_[artifact.key] = filename;
  save_index_locked();
}

std::optional<ProtocolArtifact> ArtifactStore::get(
    const std::string& key) const {
  std::string filename;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      return std::nullopt;
    }
    filename = it->second;
  }
  std::ifstream in(artifact_path(filename), std::ios::binary);
  if (!in || fault::should_fail("store.read")) {
    throw ArtifactFormatError("store: indexed artifact missing: " +
                              filename);
  }
  std::ostringstream bytes;
  bytes << in.rdbuf();
  ProtocolArtifact artifact = decode_artifact(bytes.str());
  if (artifact.key != key) {
    throw ArtifactFormatError("store: key mismatch in " + filename);
  }
  if (!artifact.proofs.empty()) {
    std::ifstream sidecar(artifact_path(hash_name(key, ".proof")),
                          std::ios::binary);
    if (sidecar) {
      std::ostringstream proof_bytes;
      proof_bytes << sidecar.rdbuf();
      rehydrate_proof_bytes(artifact, proof_bytes.str());
    }
  }
  return artifact;
}

bool ArtifactStore::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.count(key) != 0;
}

std::vector<std::string> ArtifactStore::keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(index_.size());
  for (const auto& [key, filename] : index_) {
    keys.push_back(key);
  }
  return keys;
}

std::size_t ArtifactStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

ArtifactStore::RecoveryReport ArtifactStore::recovery() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recovery_;
}

void ArtifactStore::quarantine(const std::string& key,
                               const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    return;
  }
  const std::string filename = it->second;
  const fs::path quarantine_dir = fs::path(dir_) / kQuarantineDir;
  std::error_code ec;
  fs::create_directories(quarantine_dir, ec);
  // Move the container and its proof sidecar aside rather than deleting:
  // the bytes stay available for a post-mortem (and `prune` never
  // descends into subdirectories, so quarantined files are never GC'd).
  // rename-over within one filesystem; failures (file already gone,
  // permissions) degrade to just dropping the index entry.
  for (const std::string& name : {filename, hash_name(key, ".proof")}) {
    std::error_code move_ec;
    fs::rename(fs::path(dir_) / name, quarantine_dir / name, move_ec);
  }
  std::fprintf(stderr, "ftsp: store %s: quarantining %s (%s)\n",
               dir_.c_str(), filename.c_str(), reason.c_str());
  index_.erase(it);
  ++recovery_.quarantined;
  save_index_locked(&key);
}

ArtifactStore::PruneReport ArtifactStore::prune(
    bool dry_run, std::chrono::seconds max_cache_age) const {
  PruneReport report;
  report.dry_run = dry_run;
  std::lock_guard<std::mutex> lock(mutex_);

  // Filenames the index references — everything else with a store
  // extension is garbage. The on-disk index is re-read here (not just
  // the copy loaded at construction) so artifacts a concurrent compiler
  // indexed since this handle opened are never classified as orphans.
  std::map<std::string, bool> referenced;
  for (const auto& [key, filename] : index_) {
    referenced.emplace(filename, true);
  }
  {
    std::ifstream in((fs::path(dir_) / kIndexName).string());
    std::string line;
    while (in && std::getline(in, line)) {
      const auto tab = line.find('\t');
      if (tab != std::string::npos && tab > 0) {
        referenced.emplace(line.substr(0, tab), true);
      }
    }
  }

  const auto now = fs::file_time_type::clock::now();
  // A .tmp file younger than this is plausibly a concurrent writer's
  // in-flight temp (put() writes <name>.tmp then renames); deleting it
  // would silently abort that write. Anything older is a torn leftover.
  constexpr auto kTempGracePeriod = std::chrono::minutes{10};
  std::vector<fs::path> doomed;
  const auto classify = [&](const fs::directory_entry& entry,
                            bool in_satcache) {
    if (!entry.is_regular_file()) {
      return;
    }
    const std::string name = entry.path().filename().string();
    const std::string ext = entry.path().extension().string();
    if (ext == ".tmp") {
      std::error_code age_ec;
      const auto written = fs::last_write_time(entry.path(), age_ec);
      if (!age_ec && now - written < kTempGracePeriod) {
        return;  // Possibly a live write: leave it for the next pass.
      }
      ++report.temp_files;
    } else if (!in_satcache && ext == ".ftsa") {
      if (referenced.count(name) != 0) {
        return;
      }
      // Same race guard as for .tmp: a fresh unreferenced container may
      // belong to a concurrent compiler that has not rewritten the
      // index yet. Old unreferenced containers are genuine key churn.
      std::error_code age_ec;
      const auto written = fs::last_write_time(entry.path(), age_ec);
      if (!age_ec && now - written < kTempGracePeriod) {
        return;
      }
      ++report.orphan_artifacts;
    } else if (!in_satcache && ext == ".proof") {
      // A proof sidecar lives and dies with its container: referenced
      // iff `<stem>.ftsa` is referenced. The sidecar of an indexed
      // artifact is never touched; an orphaned one is garbage (same
      // grace period as containers — a concurrent compiler writes the
      // sidecar before rewriting the index).
      if (referenced.count(entry.path().stem().string() + ".ftsa") != 0) {
        return;
      }
      std::error_code age_ec;
      const auto written = fs::last_write_time(entry.path(), age_ec);
      if (!age_ec && now - written < kTempGracePeriod) {
        return;
      }
      ++report.orphan_proofs;
    } else if (in_satcache && ext == ".kv") {
      bool stale = false;
      if (max_cache_age.count() > 0) {
        std::error_code ec;
        const auto written = fs::last_write_time(entry.path(), ec);
        stale = !ec && now - written > max_cache_age;
      }
      if (!stale) {
        // Corrupt entries (torn framing, truncation) read as misses
        // forever — reclaim them. `read_kv_file` returning nullopt for
        // a *readable* entry means exactly that.
        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream bytes;
        bytes << in.rdbuf();
        const std::string content = bytes.str();
        try {
          util::ByteReader reader(content);
          (void)reader.str();
        } catch (const std::out_of_range&) {
          stale = true;
        }
      }
      if (!stale) {
        return;
      }
      ++report.stale_cache_entries;
    } else {
      return;  // index.tsv and anything unrecognized: never touched.
    }
    std::error_code ec;
    const std::uint64_t size = entry.file_size(ec);
    report.bytes += ec ? 0 : size;
    report.removed.push_back(
        fs::relative(entry.path(), fs::path(dir_)).string());
    doomed.push_back(entry.path());
  };

  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    classify(entry, /*in_satcache=*/false);
  }
  for (const auto& entry :
       fs::directory_iterator(fs::path(dir_) / kSatCacheDir, ec)) {
    classify(entry, /*in_satcache=*/true);
  }

  if (!dry_run) {
    for (const fs::path& path : doomed) {
      std::error_code remove_ec;
      fs::remove(path, remove_ec);  // Best effort; report what was found.
    }
  }
  return report;
}

void ArtifactStore::attach_synth_cache() const {
  const std::string cache_dir = (fs::path(dir_) / kSatCacheDir).string();
  core::SynthCache::instance().set_backing(
      [cache_dir](const std::string& key) -> std::optional<std::string> {
        return read_kv_file(
            (fs::path(cache_dir) / hash_name(key, ".kv")).string(), key);
      },
      [cache_dir](const std::string& key, const std::string& value) {
        write_kv_file(
            (fs::path(cache_dir) / hash_name(key, ".kv")).string(), key,
            value);
      });
}

void ArtifactStore::detach_synth_cache() {
  core::SynthCache::instance().set_backing({}, {});
}

}  // namespace ftsp::compile
