// Quickstart: synthesize the deterministic fault-tolerant |0>_L
// preparation protocol for the Steane code, inspect the circuits, verify
// fault tolerance exhaustively, and estimate the logical error rate.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/executor.hpp"
#include "core/ft_check.hpp"
#include "core/metrics.hpp"
#include "core/protocol.hpp"
#include "core/samplers.hpp"
#include "qec/code_library.hpp"

using namespace ftsp;

int main() {
  // 1. Pick a code from the library (or build your own CssCode).
  const qec::CssCode code = qec::steane();
  std::printf("Code: %s\n", code.description().c_str());

  // 2. Synthesize the full protocol: preparation circuit, SAT-optimal
  //    verification, flags, and SAT-optimal correction branches.
  const core::Protocol protocol =
      core::synthesize_protocol(code, qec::LogicalBasis::Zero);

  std::printf("\nPreparation circuit (%zu CNOTs):\n%s",
              protocol.prep.cnot_count(), protocol.prep.to_text().c_str());

  if (protocol.layer1.has_value()) {
    std::printf("\nLayer-1 verification (%zu measurements):\n%s",
                protocol.layer1->gadgets.size(),
                protocol.layer1->verif.to_text().c_str());
    for (const auto& [key, branch] : protocol.layer1->branches) {
      std::printf("\nBranch for outcome %s (%s, %zu extra measurements):\n",
                  key.to_string().c_str(),
                  branch.is_hook_branch ? "hook" : "syndrome",
                  branch.plan.measurements.size());
      for (const auto& [pattern, recovery] : branch.plan.recoveries) {
        std::printf("  pattern %s -> recover %s on %s\n",
                    pattern.to_string().c_str(),
                    name(branch.corrected_type),
                    recovery.to_string().c_str());
      }
    }
  }

  // 3. Exhaustive single-fault check (Definition 1 with t = 1).
  const auto ft = core::check_fault_tolerance(protocol);
  std::printf("\nFault tolerance: %s (%zu single faults checked)\n",
              ft.ok ? "OK" : "VIOLATED", ft.faults_checked);

  // 4. Circuit metrics as in Table I.
  const auto metrics = core::compute_metrics(protocol);
  std::printf("\n%s\n%s\n", core::metrics_row_header().c_str(),
              core::format_metrics_row("Steane", metrics).c_str());

  // 5. Logical error rate under E1_1 circuit noise: quadratic scaling is
  //    the numerical signature of fault tolerance (cf. Fig. 4).
  const core::Executor executor(protocol);
  const decoder::PerfectDecoder decoder(code);
  const std::vector<core::TrajectoryBatch> batches = {
      core::sample_protocol_batch(executor, decoder, 0.05, 20000, 7),
      core::sample_protocol_batch(executor, decoder, 0.01, 20000, 8)};
  const auto at_1em2 = core::estimate_logical_rate(batches, 1e-2);
  const auto at_1em3 = core::estimate_logical_rate(batches, 1e-3);
  std::printf("\npL(1e-2) = %.3e +- %.1e,  pL(1e-3) = %.3e +- %.1e  "
              "(ratio %.0f; ~100 = quadratic)\n",
              at_1em2.mean, at_1em2.std_error, at_1em3.mean,
              at_1em3.std_error, at_1em2.mean / at_1em3.mean);
  return ft.ok ? 0 : 1;
}
