#include "qec/weight_enumerator.hpp"

#include <gtest/gtest.h>

#include "qec/code_library.hpp"

namespace ftsp::qec {
namespace {

TEST(WeightEnumerator, SteaneStabilizerDistribution) {
  // span(Hx) of the Steane code: identity + 7 weight-4 elements
  // (the Hamming code's nonzero words all have weight 4).
  const auto dist =
      stabilizer_weight_distribution(steane(), PauliType::X);
  EXPECT_EQ(dist.total(), 8u);
  EXPECT_EQ(dist.counts[0], 1u);
  EXPECT_EQ(dist.counts[4], 7u);
  EXPECT_EQ(dist.min_nonzero_weight(), 4u);
}

TEST(WeightEnumerator, SteaneNormalizerContainsWeightThree) {
  const auto dist = normalizer_weight_distribution(steane(), PauliType::Z);
  EXPECT_EQ(dist.total(), 16u);  // 2^(3+1)
  EXPECT_EQ(dist.min_nonzero_weight(), 3u);
  EXPECT_EQ(dist.counts[3], 7u);  // The 7 weight-3 logical reps.
}

TEST(WeightEnumerator, ShorAsymmetry) {
  // Z stabilizers of the Shor code include weight-2 pairs; X stabilizers
  // start at weight 6.
  EXPECT_EQ(stabilizer_weight_distribution(shor(), PauliType::Z)
                .min_nonzero_weight(),
            2u);
  EXPECT_EQ(stabilizer_weight_distribution(shor(), PauliType::X)
                .min_nonzero_weight(),
            6u);
}

TEST(WeightEnumerator, TotalsArePowersOfTwo) {
  for (const auto& code : all_library_codes()) {
    for (const PauliType t : {PauliType::X, PauliType::Z}) {
      const auto stab = stabilizer_weight_distribution(code, t);
      const auto norm = normalizer_weight_distribution(code, t);
      EXPECT_EQ(stab.total(), std::uint64_t{1}
                                  << code.check_matrix(t).rows())
          << code.name();
      EXPECT_EQ(norm.total(),
                stab.total() << code.num_logical())
          << code.name();
    }
  }
}

TEST(WeightEnumerator, DistanceAgreesWithDirectSearch) {
  // Independent cross-validation of the exact distance computation.
  for (const auto& code : all_library_codes()) {
    EXPECT_EQ(distance_from_enumerators(code, PauliType::X),
              code.distance_x())
        << code.name();
    EXPECT_EQ(distance_from_enumerators(code, PauliType::Z),
              code.distance_z())
        << code.name();
  }
}

TEST(WeightEnumerator, StabilizerWeightsAreEvenForSelfDualCodes) {
  // Self-orthogonal rows force even weights throughout the span.
  for (const char* name : {"Steane", "Hamming", "Tesseract"}) {
    const auto code = library_code_by_name(name);
    const auto dist = stabilizer_weight_distribution(code, PauliType::X);
    for (std::size_t w = 1; w < dist.counts.size(); w += 2) {
      EXPECT_EQ(dist.counts[w], 0u) << name << " weight " << w;
    }
  }
}

}  // namespace
}  // namespace ftsp::qec
