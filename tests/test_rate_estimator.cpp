#include "core/rate_estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/executor.hpp"
#include "core/protocol.hpp"
#include "core/samplers.hpp"
#include "decoder/lookup_decoder.hpp"
#include "qec/code_library.hpp"

namespace ftsp::core {
namespace {

struct SteaneFixture {
  Protocol protocol;
  Executor executor;
  decoder::PerfectDecoder decoder;

  SteaneFixture()
      : protocol(synthesize_protocol(qec::library_code_by_name("Steane"),
                                     qec::LogicalBasis::Zero)),
        executor(protocol),
        decoder(*protocol.code) {}
};

SteaneFixture& steane() {
  static SteaneFixture fixture;
  return fixture;
}

/// The estimator's canonical segment order, reproduced from the public
/// protocol structure: prep, then per layer the verification circuit
/// followed by the branches in outcome-key (map) order.
std::vector<const circuit::Circuit*> canonical_segments(
    const Protocol& protocol) {
  std::vector<const circuit::Circuit*> segments{&protocol.prep};
  for (const auto* layer : {&protocol.layer1, &protocol.layer2}) {
    if (!layer->has_value()) {
      continue;
    }
    segments.push_back(&(*layer)->verif);
    for (const auto& [key, branch] : (*layer)->branches) {
      (void)key;
      segments.push_back(&branch.circ);
    }
  }
  return segments;
}

struct PlannedFault {
  const circuit::Circuit* segment = nullptr;
  std::size_t gate = 0;
  std::size_t op = 0;
};

/// Scalar-executor reference run with explicitly planted faults — the
/// independent oracle for the exhaustive sectors.
bool scalar_planted_fail(const Executor& executor,
                         const decoder::PerfectDecoder& decoder,
                         const std::vector<PlannedFault>& faults) {
  const auto result = executor.run([&](const SiteRef& ref) -> int {
    for (const PlannedFault& fault : faults) {
      if (ref.segment == fault.segment && ref.gate_index == fault.gate) {
        return static_cast<int>(fault.op);
      }
    }
    return -1;
  });
  return decoder.decode(result.data_error).x_flip;
}

// --------------------------------------------- exhaustive cross-checks

TEST(RateEstimator, SingleFaultSectorMatchesDirectEnumeration) {
  auto& fixture = steane();
  RateOptions options;
  options.seed = 11;
  const double p = 0.01;
  const auto estimate = estimate_logical_error_rate(
      fixture.executor, fixture.decoder, p, options);

  ASSERT_GE(estimate.sectors.size(), 2u);
  const SectorEstimate& k1 = estimate.sectors[1];
  ASSERT_EQ(k1.num_faults, 1u);
  ASSERT_TRUE(k1.exhaustive);

  // Independent enumeration over the scalar executor: uniform E1_1
  // conditional on one fault is (1/n) per site, uniform over its ops.
  double reference = 0.0;
  std::uint64_t sites_total = 0;
  std::uint64_t cases = 0;
  for (const circuit::Circuit* segment :
       canonical_segments(fixture.protocol)) {
    sites_total += fixture.executor.fault_sites(*segment).size();
  }
  for (const circuit::Circuit* segment :
       canonical_segments(fixture.protocol)) {
    const auto& sites = fixture.executor.fault_sites(*segment);
    for (std::size_t g = 0; g < sites.size(); ++g) {
      const double site_weight =
          1.0 / static_cast<double>(sites_total) /
          static_cast<double>(sites[g].ops.size());
      for (std::size_t op = 0; op < sites[g].ops.size(); ++op) {
        ++cases;
        if (scalar_planted_fail(fixture.executor, fixture.decoder,
                                {{segment, g, op}})) {
          reference += site_weight;
        }
      }
    }
  }
  EXPECT_EQ(k1.cases, cases);
  EXPECT_NEAR(k1.fail_rate, reference, 1e-12);
  // Fault tolerance of the synthesized protocol: no single fault may
  // cause a logical error.
  EXPECT_DOUBLE_EQ(reference, 0.0);
}

TEST(RateEstimator, TwoFaultSectorMatchesDirectEnumeration) {
  auto& fixture = steane();
  RateOptions options;
  options.seed = 11;
  const double p = 0.01;
  const auto estimate = estimate_logical_error_rate(
      fixture.executor, fixture.decoder, p, options);

  ASSERT_GE(estimate.sectors.size(), 3u);
  const SectorEstimate& k2 = estimate.sectors[2];
  ASSERT_EQ(k2.num_faults, 2u);
  ASSERT_TRUE(k2.exhaustive);

  // Enumerate all unordered site pairs x op assignments on the scalar
  // executor. (A pair within one segment or across two segments both
  // reduce to "return the planned op at the matching (segment, gate)".)
  struct Site {
    const circuit::Circuit* segment;
    std::size_t gate;
    std::size_t ops;
  };
  std::vector<Site> sites;
  for (const circuit::Circuit* segment :
       canonical_segments(fixture.protocol)) {
    const auto& fault_sites = fixture.executor.fault_sites(*segment);
    for (std::size_t g = 0; g < fault_sites.size(); ++g) {
      sites.push_back({segment, g, fault_sites[g].ops.size()});
    }
  }
  const double n = static_cast<double>(sites.size());
  const double pair_weight = 2.0 / (n * (n - 1.0));
  double reference = 0.0;
  std::uint64_t cases = 0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      const double weight =
          pair_weight / static_cast<double>(sites[i].ops * sites[j].ops);
      for (std::size_t oi = 0; oi < sites[i].ops; ++oi) {
        for (std::size_t oj = 0; oj < sites[j].ops; ++oj) {
          ++cases;
          if (scalar_planted_fail(fixture.executor, fixture.decoder,
                                  {{sites[i].segment, sites[i].gate, oi},
                                   {sites[j].segment, sites[j].gate, oj}})) {
            reference += weight;
          }
        }
      }
    }
  }
  EXPECT_EQ(k2.cases, cases);
  EXPECT_NEAR(k2.fail_rate, reference, 1e-9);
  EXPECT_GT(reference, 0.0);  // Two faults can defeat a distance-3 code.
}

// ------------------------------------------------- statistical checks

TEST(RateEstimator, AgreesWithPlainMonteCarloAtHighP) {
  auto& fixture = steane();
  const double p = 0.03;
  RateOptions options;
  options.rel_err = 0.02;
  options.seed = 3;
  const auto stratified = estimate_logical_error_rate(
      fixture.executor, fixture.decoder, p, options);

  const auto batch = sample_protocol_batch(fixture.executor, fixture.decoder,
                                           p, 1 << 18, 17);
  const auto naive = estimate_logical_rate({batch}, p);

  const double sigma = std::sqrt(stratified.std_error * stratified.std_error +
                                 naive.std_error * naive.std_error);
  EXPECT_NEAR(stratified.p_logical, naive.mean, 5.0 * sigma);
  EXPECT_LE(stratified.ci_low, stratified.p_logical);
  EXPECT_GE(stratified.ci_high, stratified.p_logical);
  EXPECT_GT(stratified.equivalent_naive_shots,
            static_cast<double>(stratified.mc_shots));
}

TEST(RateEstimator, DeterministicAcrossThreadsAndWidths) {
  auto& fixture = steane();
  RateOptions base;
  base.seed = 99;
  base.rel_err = 0.05;
  const auto reference = estimate_logical_error_rate(
      fixture.executor, fixture.decoder, 0.005, base);

  RateOptions threaded = base;
  threaded.num_threads = 4;
  const auto with_threads = estimate_logical_error_rate(
      fixture.executor, fixture.decoder, 0.005, threaded);

  RateOptions narrow = base;
  narrow.width = WordWidth::W64;
  const auto with_u64 = estimate_logical_error_rate(
      fixture.executor, fixture.decoder, 0.005, narrow);

  for (const auto* other : {&with_threads, &with_u64}) {
    EXPECT_DOUBLE_EQ(reference.p_logical, other->p_logical);
    EXPECT_DOUBLE_EQ(reference.std_error, other->std_error);
    ASSERT_EQ(reference.sectors.size(), other->sectors.size());
    for (std::size_t i = 0; i < reference.sectors.size(); ++i) {
      EXPECT_EQ(reference.sectors[i].fails, other->sectors[i].fails);
      EXPECT_EQ(reference.sectors[i].shots, other->sectors[i].shots);
    }
  }
}

TEST(RateEstimator, SweepMatchesSingleEstimates) {
  auto& fixture = steane();
  RateOptions options;
  options.seed = 42;
  // A one-point sweep is exactly the single-p estimator.
  const auto single = estimate_logical_error_rate(
      fixture.executor, fixture.decoder, 0.002, options);
  const auto sweep = estimate_logical_error_rate_sweep(
      fixture.executor, fixture.decoder, {0.002}, options);
  ASSERT_EQ(sweep.size(), 1u);
  EXPECT_DOUBLE_EQ(single.p_logical, sweep[0].p_logical);

  // Multi-point sweeps share one sampling pass; every point must stay
  // within its own interval of an independently run estimate.
  const std::vector<double> ps{1e-4, 1e-3, 5e-3};
  const auto curve = estimate_logical_error_rate_sweep(
      fixture.executor, fixture.decoder, ps, options);
  ASSERT_EQ(curve.size(), ps.size());
  double previous = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const auto independent = estimate_logical_error_rate(
        fixture.executor, fixture.decoder, ps[i], options);
    const double sigma =
        5.0 * (curve[i].std_error + independent.std_error) +
        curve[i].tail_weight + independent.tail_weight + 1e-15;
    EXPECT_NEAR(curve[i].p_logical, independent.p_logical,
                5.0 * sigma + 0.1 * independent.p_logical)
        << "p=" << ps[i];
    EXPECT_GT(curve[i].p_logical, previous) << "monotone in p";
    previous = curve[i].p_logical;
  }
}

TEST(RateEstimator, LowPIsExhaustivelyDominated) {
  auto& fixture = steane();
  RateOptions options;
  options.seed = 8;
  const auto estimate = estimate_logical_error_rate(
      fixture.executor, fixture.decoder, 1e-4, options);
  // At p = 1e-4 the k <= 2 sectors (exact) carry essentially all the
  // mass: the stratified std error must be a tiny fraction of p_L.
  EXPECT_GT(estimate.p_logical, 0.0);
  EXPECT_LT(estimate.std_error, 0.01 * estimate.p_logical);
  EXPECT_GT(estimate.equivalent_naive_shots, 1e8);
  EXPECT_LT(estimate.tail_weight, 1e-10);
}

TEST(RateEstimator, BiasedNoiseSingleTarget) {
  auto& fixture = steane();
  RateOptions options;
  options.seed = 21;
  const auto params = sim::NoiseParams::biased(0.001, 0.02, 0.01, 0.002);
  const auto estimate = estimate_logical_error_rate(
      fixture.executor, fixture.decoder, params, options);
  EXPECT_GT(estimate.p_logical, 0.0);
  EXPECT_LE(estimate.ci_low, estimate.p_logical);
  EXPECT_GE(estimate.ci_high, estimate.p_logical);

  // Statistical agreement with importance-sampled plain Monte Carlo.
  const auto batch = sample_protocol_batch(fixture.executor, fixture.decoder,
                                           params, 1 << 18, 4);
  const auto naive = estimate_logical_rate({batch}, params);
  const double sigma = std::sqrt(estimate.std_error * estimate.std_error +
                                 naive.std_error * naive.std_error);
  EXPECT_NEAR(estimate.p_logical, naive.mean, 6.0 * sigma);
}

TEST(RateEstimator, ExhaustedBudgetFoldsUnsampledSectorsIntoTail) {
  // At p = 0.05 dozens of sectors carry real mass; a budget that dries
  // up after one sector's initial allocation must NOT silently treat
  // the unsampled sectors as failure-free — their weight belongs to the
  // reported tail (and hence the upper confidence limit).
  auto& fixture = steane();
  RateOptions options;
  options.seed = 2;
  options.min_sector_shots = 2048;
  options.max_shots = 2048;  // Exhausted after the first sampled sector.
  const auto estimate = estimate_logical_error_rate(
      fixture.executor, fixture.decoder, 0.05, options);

  std::size_t unsampled = 0;
  double unsampled_weight = 0.0;
  for (const auto& sector : estimate.sectors) {
    if (!sector.exhaustive && sector.shots == 0) {
      ++unsampled;
      unsampled_weight += sector.weight;
      EXPECT_DOUBLE_EQ(sector.ci_low, 0.0);
      EXPECT_DOUBLE_EQ(sector.ci_high, 1.0);
    }
  }
  ASSERT_GT(unsampled, 0u);
  EXPECT_GE(estimate.tail_weight, unsampled_weight);
  EXPECT_GE(estimate.ci_high, estimate.p_logical + unsampled_weight * 0.99);
  EXPECT_EQ(estimate.mc_shots, 2048u);

  // With budget to spare, the allocator keeps going until the combined
  // error — sampling std error PLUS the still-unassessed mass — meets
  // the target, then stops instead of burning the rest of the budget.
  RateOptions roomy = options;
  roomy.max_shots = 1 << 20;
  roomy.min_sector_shots = 0;  // Everything flows through the allocator.
  const auto full = estimate_logical_error_rate(fixture.executor,
                                                fixture.decoder, 0.05, roomy);
  EXPECT_LT(full.mc_shots, roomy.max_shots);  // Converged, not exhausted.
  EXPECT_LE(full.std_error + full.tail_weight,
            roomy.rel_err * full.p_logical);
  // Negligible-weight deep sectors may legitimately stay unsampled —
  // but only because their mass is inside the reported tail bound.
  for (const auto& sector : full.sectors) {
    if (!sector.exhaustive && sector.shots == 0) {
      EXPECT_LE(sector.weight, full.tail_weight);
    }
  }
}

TEST(RateEstimator, ValidatesArguments) {
  auto& fixture = steane();
  EXPECT_THROW(estimate_logical_error_rate(fixture.executor, fixture.decoder,
                                           0.0),
               std::invalid_argument);
  EXPECT_THROW(estimate_logical_error_rate(fixture.executor, fixture.decoder,
                                           1.0),
               std::invalid_argument);
  EXPECT_THROW(estimate_logical_error_rate_sweep(fixture.executor,
                                                 fixture.decoder, {}),
               std::invalid_argument);
  RateOptions bad;
  bad.rel_err = 0.0;
  EXPECT_THROW(estimate_logical_error_rate(fixture.executor, fixture.decoder,
                                           0.01, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace ftsp::core
