#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ftsp::compile {

/// Any structural defect of an artifact file: bad magic, unsupported
/// version, truncated section table, out-of-bounds payload, CRC
/// mismatch. Corrupted input always fails loud with this type — it is
/// never silently repaired and never reaches the decoders.
class ArtifactFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// On-disk container version. Bumped only for incompatible *container*
/// changes; new section kinds do NOT bump it (old readers skip unknown
/// section ids, see `unpack_container`). Full byte-level spec in
/// `src/compile/format.md`.
inline constexpr std::uint16_t kContainerVersion = 1;

/// Well-known section ids of a protocol artifact. Ids are stable
/// append-only protocol constants; readers ignore ids they do not know.
enum class SectionId : std::uint32_t {
  Meta = 1,        ///< Store key, code name, basis (string metadata).
  Protocol = 2,    ///< `core::save_protocol_binary` payload.
  DecoderX = 3,    ///< X-error lookup-decoder table.
  DecoderZ = 4,    ///< Z-error lookup-decoder table.
  Layout = 5,      ///< Precomputed `core::FrameBatchLayout`.
  Provenance = 6,  ///< Synthesis provenance (engine, stats, wall time).
  Coupling = 7,    ///< Device coupling map the protocol was compiled for.
                   ///< Optional: absent means all-to-all (legacy files).
  Proof = 8,       ///< Optimality-proof metadata: per-stage DRAT proof
                   ///< fingerprints and checker verdicts (bytes live in a
                   ///< `.proof` sidecar). Optional: absent means the
                   ///< artifact was compiled without proof capture.
};

struct Section {
  std::uint32_t id = 0;
  std::string bytes;
};

/// Serializes sections into the container byte layout: 8-byte magic,
/// version, section table (id/flags/offset/size/CRC32 per entry), then
/// the payloads.
std::string pack_container(const std::vector<Section>& sections);

/// Parses and integrity-checks a container. Every section's CRC is
/// verified; any structural defect throws `ArtifactFormatError`. Unknown
/// section ids are returned as-is — skipping them is the *caller's*
/// (cheap) job, which is what makes the format forward-compatible:
/// files written by a newer library with extra sections load cleanly.
std::vector<Section> unpack_container(std::string_view bytes);

/// Returns the payload of the first section with the given id, or
/// throws `ArtifactFormatError` when the section is absent.
const std::string& find_section(const std::vector<Section>& sections,
                                SectionId id);

/// Whole-file helpers (binary mode). `read_artifact_file` throws
/// `ArtifactFormatError` when the file cannot be opened; parse errors
/// propagate from `unpack_container`.
void write_artifact_file(const std::string& path,
                         const std::vector<Section>& sections);
std::vector<Section> read_artifact_file(const std::string& path);

}  // namespace ftsp::compile
