#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "compile/service.hpp"

namespace ftsp::serve {

struct TcpServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port; read back via `port()`.
  std::uint16_t port = 0;
  /// Accepted-connection cap. A connection beyond the cap receives one
  /// v2 `overloaded` error line and is closed immediately.
  std::size_t max_connections = 256;
  /// Compute worker threads (0 = hardware concurrency).
  std::size_t num_threads = 0;
  /// Idle connections (no bytes received, nothing in flight) are closed
  /// after this long. 0 disables the idle reaper.
  std::chrono::milliseconds idle_timeout{0};
  /// Per-request deadline, measured from request *arrival* (so time
  /// spent queued behind other work counts). An expired request answers
  /// with the `deadline_exceeded` error code and — for compute ops —
  /// cooperatively cancels mid-estimate, freeing its worker. 0 disables;
  /// a v2 request's `deadline_ms` field can tighten (never extend) it.
  std::chrono::milliseconds request_timeout{0};
  /// Backpressure, output side: a connection whose un-flushed response
  /// bytes exceed this (client not reading) is closed loudly.
  std::size_t max_output_bytes = 8u << 20;
  /// A single request line longer than this is rejected (connection
  /// closed) — bounds per-connection input memory.
  std::size_t max_line_bytes = 1u << 20;
  /// Backpressure, input side: reading from a connection pauses while
  /// it has this many requests queued or computing; resumes as
  /// responses flush.
  std::size_t max_inflight_per_connection = 64;
  /// Optional plaintext metrics sidecar: when enabled, a second
  /// listener on metrics_host:metrics_port answers every HTTP request
  /// with one Prometheus text rendering of the process metric registry
  /// (see src/obs/expose.hpp) and closes — scrape with curl or a
  /// Prometheus scrape job, no JSON protocol handshake needed. Served
  /// by the same event loop; read back the bound port via
  /// `TcpServer::metrics_port()` when 0.
  bool metrics_enabled = false;
  std::string metrics_host = "127.0.0.1";
  std::uint16_t metrics_port = 0;
};

/// Multi-client TCP front-end for the line protocol: one event-loop
/// thread multiplexing every connection via epoll (Linux; poll(2)
/// elsewhere), plus a pool of compute workers.
///
/// Responses to one connection are written in request arrival order
/// (per-connection sequence numbers), matching the stdin and unix-
/// socket servers' ordering contract, while requests from different
/// connections compute concurrently.
///
/// The service is taken as a *snapshot provider* rather than a
/// reference: each request grabs the current `shared_ptr` once and
/// computes entirely against it, which is what makes hot store reloads
/// (see ReloadableService) invisible to in-flight requests.
class TcpServer {
 public:
  using ServiceSnapshotFn =
      std::function<std::shared_ptr<const compile::ProtocolService>()>;

  struct Stats {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected_overloaded{0};
    std::atomic<std::uint64_t> closed_idle{0};
    std::atomic<std::uint64_t> closed_overflow{0};
    std::atomic<std::uint64_t> requests{0};
  };

  /// Binds and listens (throws std::runtime_error on failure) but does
  /// not serve until `start()`.
  TcpServer(ServiceSnapshotFn service, TcpServerOptions options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Actual bound port (resolves port 0 requests).
  std::uint16_t port() const { return port_; }

  /// Actual bound metrics-sidecar port; 0 when the sidecar is disabled.
  std::uint16_t metrics_port() const { return metrics_port_; }

  /// Starts the event loop and worker threads (idempotent).
  void start();

  /// Graceful shutdown: stops accepting and stops reading new request
  /// lines, drains every in-flight compute and queued response, closes
  /// every connection, joins all threads. In-flight requests are never
  /// dropped; unparsed partial input is. Idempotent; also run by the
  /// destructor.
  void stop();

  /// Blocks until `stop()` is called from another thread (or a fatal
  /// event-loop error).
  void wait();

  const Stats& stats() const { return stats_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  Stats stats_;
  std::uint16_t port_ = 0;
  std::uint16_t metrics_port_ = 0;
};

}  // namespace ftsp::serve
