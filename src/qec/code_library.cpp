#include "qec/code_library.hpp"

#include <stdexcept>

#include "f2/bit_matrix.hpp"

namespace ftsp::qec {

using f2::BitMatrix;
using f2::BitVec;

namespace {

// Instances produced by the SAT code searches in code_search.hpp
// (deterministic; parameters verified by tests/test_codes.cpp). Each stands
// in for a paper code whose check matrix is not public; see DESIGN.md.
const std::vector<std::string> kEleven113Rows = {
    "10000001011",
    "01000111110",
    "00100100011",
    "00010111101",
    "00001010011",
};
// Note: a *self-dual* [[12,2,4]] CSS code does not exist (our SAT search
// proves the formula unsatisfiable), so the Carbon stand-in is two-sided.
const std::vector<std::string> kCarbonHxRows = {
    "100000011111",
    "010001101110",
    "001001111010",
    "000100100011",
    "000011010111",
};
const std::vector<std::string> kCarbonHzRows = {
    "101101110000",
    "100011001000",
    "110101100100",
    "111110000010",
    "111010100001",
};
const std::vector<std::string> kSixteen24Rows = {
    "1000000000001011",
    "0100000101111101",
    "0010000000000111",
    "0001000110100000",
    "0000100101111110",
    "0000010111000000",
    "0000001110010000",
};

}  // namespace

CssCode steane() {
  // Qubits on the vertices of the triangular tiling; X and Z generators on
  // the same three faces (self-dual).
  const BitMatrix h = BitMatrix::from_strings({
      "1100110",
      "1010101",
      "0001111",
  });
  return CssCode("Steane", h, h);
}

CssCode shor() {
  const BitMatrix hx = BitMatrix::from_strings({
      "111111000",
      "000111111",
  });
  const BitMatrix hz = BitMatrix::from_strings({
      "110000000",
      "011000000",
      "000110000",
      "000011000",
      "000000110",
      "000000011",
  });
  return CssCode("Shor", hx, hz);
}

CssCode surface3() {
  // Rotated surface code on a 3x3 grid (qubits row-major):
  //   0 1 2
  //   3 4 5
  //   6 7 8
  // Z plaquettes: {0,1,3,4}, {4,5,7,8} and boundary pairs {2,5}, {3,6};
  // X plaquettes: {1,2,4,5}, {3,4,6,7} and boundary pairs {0,1}, {7,8}.
  const BitMatrix hx = BitMatrix::from_strings({
      "011011000",
      "000110110",
      "110000000",
      "000000011",
  });
  const BitMatrix hz = BitMatrix::from_strings({
      "110110000",
      "000011011",
      "001001000",
      "000100100",
  });
  return CssCode("Surface_3", hx, hz);
}

CssCode eleven_1_3() {
  // Self-dual [[11,1,3]] instance found by the SAT code search
  // (see code_search.hpp); stands in for Grassl's [[11,1,3]].
  const BitMatrix h = BitMatrix::from_strings(kEleven113Rows);
  return CssCode("[[11,1,3]]", h, h);
}

CssCode tetrahedral() {
  // Quantum Reed-Muller code [[15,1,3]]: qubits are the nonzero points v of
  // F2^4 (qubit index v-1). X generators evaluate the coordinate functions
  // x_i (weight 8); Z generators evaluate x_i and the products x_i x_j.
  const std::size_t n = 15;
  BitMatrix hx;
  for (std::size_t i = 0; i < 4; ++i) {
    BitVec row(n);
    for (std::size_t v = 1; v <= n; ++v) {
      if ((v >> i) & 1U) {
        row.set(v - 1);
      }
    }
    hx.append_row(row);
  }
  BitMatrix hz = hx;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      BitVec row(n);
      for (std::size_t v = 1; v <= n; ++v) {
        if (((v >> i) & 1U) != 0 && ((v >> j) & 1U) != 0) {
          row.set(v - 1);
        }
      }
      hz.append_row(row);
    }
  }
  return CssCode("Tetrahedral", hx, hz);
}

CssCode hamming15() {
  // Hamming [15,11,3] check matrix used for both sides (self-dual CSS).
  const std::size_t n = 15;
  BitMatrix h;
  for (std::size_t i = 0; i < 4; ++i) {
    BitVec row(n);
    for (std::size_t v = 1; v <= n; ++v) {
      if ((v >> i) & 1U) {
        row.set(v - 1);
      }
    }
    h.append_row(row);
  }
  return CssCode("Hamming", h, h);
}

CssCode carbon() {
  // Two-sided [[12,2,4]] instance found by the SAT code search; stands in
  // for the Quantinuum "Carbon" code.
  return CssCode("Carbon", BitMatrix::from_strings(kCarbonHxRows),
                 BitMatrix::from_strings(kCarbonHzRows));
}

CssCode sixteen_2_4() {
  // Self-dual [[16,2,4]] instance found by the SAT code search; stands in
  // for Grassl's [[16,2,4]].
  const BitMatrix h = BitMatrix::from_strings(kSixteen24Rows);
  return CssCode("[[16,2,4]]", h, h);
}

CssCode tesseract() {
  // RM(1,4): the all-ones row plus the four coordinate hyperplanes over
  // the 16 points of F2^4. Self-orthogonal, k = 16 - 10 = 6, d = 4.
  const std::size_t n = 16;
  BitMatrix h;
  BitVec ones(n);
  for (std::size_t v = 0; v < n; ++v) {
    ones.set(v);
  }
  h.append_row(ones);
  for (std::size_t i = 0; i < 4; ++i) {
    BitVec row(n);
    for (std::size_t v = 0; v < n; ++v) {
      if ((v >> i) & 1U) {
        row.set(v);
      }
    }
    h.append_row(row);
  }
  return CssCode("Tesseract", h, h);
}

std::vector<CssCode> all_library_codes() {
  return {steane(),     shor(),      surface3(),
          eleven_1_3(), tetrahedral(), hamming15(),
          carbon(),     sixteen_2_4(), tesseract()};
}

CssCode library_code_by_name(const std::string& name) {
  for (auto& code : all_library_codes()) {
    if (code.name() == name) {
      return code;
    }
  }
  throw std::invalid_argument("library_code_by_name: unknown code " + name);
}

}  // namespace ftsp::qec
