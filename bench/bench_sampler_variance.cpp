// Ablation C: sampler quality. Compares naive Monte Carlo at the target p
// against the importance-sampled batches (the stand-in for the paper's
// Dynamic Subset Sampling) on relative standard error at small p — the
// regime where naive MC needs ~1/p_L shots to see a single failure.
#include <cstdio>

#include "core/executor.hpp"
#include "core/protocol.hpp"
#include "core/samplers.hpp"
#include "qec/code_library.hpp"

namespace {
using namespace ftsp;
}

int main() {
  const auto code = qec::steane();
  const auto protocol =
      core::synthesize_protocol(code, qec::LogicalBasis::Zero);
  const core::Executor executor(protocol);
  const decoder::PerfectDecoder decoder(code);

  std::printf("Sampler comparison on the Steane protocol (20000 shots "
              "each)\n\n");
  std::printf("%-10s %-14s %-12s %-14s %-12s\n", "p", "naive pL",
              "naive rel.SE", "IS pL", "IS rel.SE");

  const auto is_batches = std::vector<core::TrajectoryBatch>{
      core::sample_protocol_batch(executor, decoder, 0.1, 10000, 1),
      core::sample_protocol_batch(executor, decoder, 0.02, 10000, 2)};

  for (const double p : {0.03, 0.01, 0.003, 0.001}) {
    const auto naive_batch =
        core::sample_protocol_batch(executor, decoder, p, 20000, 3);
    const auto naive = core::estimate_logical_rate({naive_batch}, p);
    const auto is = core::estimate_logical_rate(is_batches, p);
    const auto rel = [](const core::Estimate& e) {
      return e.mean > 0 ? e.std_error / e.mean : 0.0;
    };
    std::printf("%-10.3g %-14.3e %-12.3f %-14.3e %-12.3f\n", p,
                naive.mean, rel(naive), is.mean, rel(is));
  }
  std::printf("\nNaive MC degenerates (zero observed failures -> pL "
              "estimate 0) below p ~ 1e-3; the re-weighted strata keep a "
              "finite relative error from the same total shot budget.\n");
  return 0;
}
