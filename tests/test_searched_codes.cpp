// Generalization: run the complete synthesis pipeline on codes that are
// *not* in the library but discovered on the fly by the SAT code search —
// the paper's closing promise ("allowing fellow peers to create state
// preparation circuits for upcoming codes and codes not considered in
// this work").
#include <gtest/gtest.h>

#include "core/ft_check.hpp"
#include "core/metrics.hpp"
#include "core/protocol.hpp"
#include "qec/code_search.hpp"

namespace ftsp::core {
namespace {

TEST(SearchedCodes, FreshSelfDual713GetsFtProtocol) {
  qec::SelfDualSearchOptions options;
  options.n = 7;
  options.rows = 3;
  options.min_detect_weight = 3;
  const auto h = qec::find_self_dual_check_matrix(options);
  ASSERT_TRUE(h.has_value());
  const qec::CssCode code("searched-[[7,1,3]]", *h, *h);
  const auto protocol =
      synthesize_protocol(code, qec::LogicalBasis::Zero);
  EXPECT_TRUE(check_fault_tolerance(protocol).ok);
}

TEST(SearchedCodes, FreshSelfDual913GetsFtProtocol) {
  qec::SelfDualSearchOptions options;
  options.n = 9;
  options.rows = 4;
  options.min_detect_weight = 3;
  options.allow_degenerate = true;
  const auto h = qec::find_self_dual_check_matrix(options);
  if (!h.has_value()) {
    GTEST_SKIP() << "no self-dual [[9,1,>=3]] found";
  }
  const qec::CssCode code("searched-[[9,1,3]]", *h, *h);
  ASSERT_GE(code.distance(), 3u);
  const auto protocol =
      synthesize_protocol(code, qec::LogicalBasis::Zero);
  EXPECT_TRUE(check_fault_tolerance(protocol).ok);
}

TEST(SearchedCodes, FreshTwoSided1013GetsFtProtocol) {
  qec::CssSearchOptions options;
  options.n = 10;
  options.rx = 4;
  options.rz = 5;
  options.min_distance = 3;
  const auto result = qec::find_css_check_matrices(options);
  ASSERT_TRUE(result.has_value());
  const qec::CssCode code("searched-[[10,1,3]]", result->hx, result->hz);
  ASSERT_GE(code.distance(), 3u);
  const auto protocol =
      synthesize_protocol(code, qec::LogicalBasis::Zero);
  const auto ft = check_fault_tolerance(protocol);
  EXPECT_TRUE(ft.ok) << (ft.violations.empty() ? ""
                                               : ft.violations.front());
  // And metrics extraction works on arbitrary codes.
  const auto metrics = compute_metrics(protocol);
  EXPECT_GT(metrics.prep_cnots, 0u);
}

TEST(SearchedCodes, PlusBasisOnSearchedCode) {
  qec::SelfDualSearchOptions options;
  options.n = 7;
  options.rows = 3;
  options.min_detect_weight = 3;
  const auto h = qec::find_self_dual_check_matrix(options);
  ASSERT_TRUE(h.has_value());
  const qec::CssCode code("searched-plus", *h, *h);
  const auto protocol =
      synthesize_protocol(code, qec::LogicalBasis::Plus);
  EXPECT_TRUE(check_fault_tolerance(protocol).ok);
}

}  // namespace
}  // namespace ftsp::core
