// Warm-load vs re-synthesis: the end-to-end cost of obtaining a servable
// protocol (executor + decoder ready to sample) from (a) a cold SAT
// synthesis and (b) a precompiled artifact loaded from an ArtifactStore.
// This is the acceptance benchmark of the compile/store/serve split —
// the warm path must be >= 20x faster end to end and bit-identical.
//
// Plain chrono main (no Google Benchmark dependency), JSON-per-code
// output consumed by the CI bench-smoke job:
//   bench_artifact_store [--smoke] [--all] [--shots N]
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "compile/artifact.hpp"
#include "compile/store.hpp"
#include "core/executor.hpp"
#include "core/samplers.hpp"
#include "core/synth_cache.hpp"
#include "qec/code_library.hpp"
#include "sat/parallel_solver.hpp"

namespace {

using namespace ftsp;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

bool identical(const core::TrajectoryBatch& a,
               const core::TrajectoryBatch& b) {
  if (a.trajectories.size() != b.trajectories.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.trajectories.size(); ++i) {
    const auto& ta = a.trajectories[i];
    const auto& tb = b.trajectories[i];
    if (ta.x_fail != tb.x_fail || ta.z_fail != tb.z_fail ||
        ta.faults != tb.faults || ta.hook_terminated != tb.hook_terminated) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool all = false;
  std::size_t shots = 4096;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--all") == 0) {
      all = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      shots = 1024;
    } else if (std::strcmp(argv[i], "--shots") == 0 && i + 1 < argc) {
      shots = static_cast<std::size_t>(std::stoul(argv[++i]));
    }
  }

  std::vector<std::string> names = {"Steane", "Shor", "Surface_3",
                                    "[[11,1,3]]"};
  if (all) {
    names.clear();
    for (const auto& code : qec::all_library_codes()) {
      names.push_back(code.name());
    }
  }

  // Pid-suffixed so concurrent invocations (parallel CI jobs on one
  // runner) never clobber each other's stores; removed on every exit
  // path below.
  const auto store_dir =
      std::filesystem::temp_directory_path() /
      ("ftsp-bench-store-" + std::to_string(::getpid()));
  std::filesystem::remove_all(store_dir);
  struct Cleanup {
    std::filesystem::path dir;
    ~Cleanup() {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  } cleanup{store_dir};

  const compile::ProtocolCompiler compiler;
  double worst_speedup = 1e300;
  std::printf("[\n");
  for (std::size_t c = 0; c < names.size(); ++c) {
    const auto code = qec::library_code_by_name(names[c]);

    // --- Cold path: SAT synthesis + decoder build, nothing cached.
    core::SynthCache::instance().clear();
    core::SynthCache::instance().reset_stats();
    const auto t_synth = Clock::now();
    const auto artifact = compiler.compile(code);
    const core::Executor synth_executor(artifact.protocol);
    const decoder::PerfectDecoder synth_decoder(*artifact.protocol.code);
    const double synth_ms = ms_since(t_synth);
    const std::uint64_t solver_calls = sat::engine_solver_invocations();

    {
      compile::ArtifactStore store(store_dir.string());
      store.put(artifact);
    }

    // --- Warm path: fresh store handle, load + rehydrate, ready to
    // sample. Best of a few repetitions (filesystem-cache steady state —
    // the serving regime).
    double load_ms = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      const auto t_load = Clock::now();
      const compile::ArtifactStore store(store_dir.string());
      const auto loaded = store.get(artifact.key);
      const core::Executor executor(loaded->protocol);
      const decoder::PerfectDecoder decoder =
          compile::make_artifact_decoder(*loaded);
      load_ms = std::min(load_ms, ms_since(t_load));
    }

    // --- Bit-identity of the two sampling paths.
    core::SynthCache::instance().reset_stats();
    const compile::ArtifactStore store(store_dir.string());
    const auto loaded = store.get(artifact.key);
    const core::Executor warm_executor(loaded->protocol);
    const decoder::PerfectDecoder warm_decoder =
        compile::make_artifact_decoder(*loaded);
    core::SamplerOptions warm_options;
    warm_options.layout = &loaded->layout;
    const auto t_sample = Clock::now();
    const auto warm_batch = core::sample_protocol_batch(
        warm_executor, warm_decoder, 0.01, shots, 42, warm_options);
    const double sample_ms = ms_since(t_sample);
    const auto cold_batch = core::sample_protocol_batch(
        synth_executor, synth_decoder, 0.01, shots, 42);
    const bool bit_identical = identical(warm_batch, cold_batch);
    const std::uint64_t warm_solver_calls = sat::engine_solver_invocations();

    const double speedup = synth_ms / load_ms;
    worst_speedup = std::min(worst_speedup, speedup);
    std::printf(
        "  {\"code\": \"%s\", \"synth_ms\": %.3f, \"solver_calls\": %llu, "
        "\"load_ms\": %.3f, \"speedup\": %.1f, \"warm_solver_calls\": %llu, "
        "\"sample_ms\": %.3f, \"shots\": %zu, \"bit_identical\": %s}%s\n",
        names[c].c_str(), synth_ms,
        static_cast<unsigned long long>(solver_calls), load_ms, speedup,
        static_cast<unsigned long long>(warm_solver_calls), sample_ms, shots,
        bit_identical ? "true" : "false",
        c + 1 < names.size() ? "," : "");
    if (!bit_identical || warm_solver_calls != 0) {
      std::fprintf(stderr, "FAIL: %s warm path diverged\n", names[c].c_str());
      return 1;
    }
  }
  std::printf("]\n");
  std::fprintf(stderr, "worst warm-load speedup: %.1fx (target >= 20x)\n",
               worst_speedup);
  return worst_speedup >= 20.0 ? 0 : 1;
}
