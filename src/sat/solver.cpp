#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/registry.hpp"

namespace ftsp::sat {

namespace {
constexpr double kActivityRescaleLimit = 1e100;

/// Publishes one solve call's search-effort deltas to the telemetry
/// registry on scope exit — covers every return path of solve_limited.
/// Pure observation: nothing here feeds back into the search.
class SolveStatsObs {
 public:
  explicit SolveStatsObs(const SolverStats& stats)
      : stats_(stats), start_(stats) {}
  ~SolveStatsObs() {
    if (!obs::enabled()) {
      return;
    }
    auto& registry = obs::Registry::instance();
    static obs::Counter& solves = registry.counter("sat.solve.count");
    static obs::Counter& conflicts = registry.counter("sat.conflict.count");
    static obs::Counter& propagations =
        registry.counter("sat.propagation.count");
    static obs::Counter& decisions = registry.counter("sat.decision.count");
    static obs::Counter& restarts = registry.counter("sat.restart.count");
    static obs::Counter& learned =
        registry.counter("sat.learned_clause.count");
    solves.add(1);
    conflicts.add(stats_.conflicts - start_.conflicts);
    propagations.add(stats_.propagations - start_.propagations);
    decisions.add(stats_.decisions - start_.decisions);
    restarts.add(stats_.restarts - start_.restarts);
    learned.add(stats_.learned_clauses - start_.learned_clauses);
  }
  SolveStatsObs(const SolveStatsObs&) = delete;
  SolveStatsObs& operator=(const SolveStatsObs&) = delete;

 private:
  const SolverStats& stats_;
  const SolverStats start_;
};
}  // namespace

std::uint64_t luby(std::uint64_t i) {
  // Value at 1-based position i: if i == 2^k - 1 the value is 2^(k-1);
  // otherwise the sequence restarts at position i - (2^(k-1) - 1).
  for (;;) {
    std::uint64_t k = 1;
    while (((std::uint64_t{1} << k) - 1) < i) {
      ++k;
    }
    if (((std::uint64_t{1} << k) - 1) == i) {
      return std::uint64_t{1} << (k - 1);
    }
    i -= (std::uint64_t{1} << (k - 1)) - 1;
  }
}

Solver::Solver() : Solver(SolverConfig{}) {}

Solver::Solver(const SolverConfig& config)
    : config_(config),
      // SplitMix-style scrambling; never zero so xorshift cannot stall.
      rng_state_((config.seed + 0x9E3779B97F4A7C15ULL) | 1ULL) {}

Solver::~Solver() = default;

std::uint64_t Solver::rng_next() {
  std::uint64_t x = rng_state_;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  rng_state_ = x;
  return x;
}

Var Solver::new_var() {
  const Var v = num_vars();
  assigns_.push_back(LBool::Undef);
  polarity_.push_back(!config_.initial_phase);
  reason_.push_back(nullptr);
  level_.push_back(0);
  var_activity_.push_back(0.0);
  seen_.push_back(false);
  heap_pos_.push_back(-1);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

bool Solver::add_clause(std::span<const Lit> lits) {
  if (!ok_) {
    return false;
  }
  assert(decision_level() == 0);
  if (proof_logging_) {
    // The premise records clauses verbatim, before simplification: the
    // stored (strengthened) form is a unit-propagation consequence of the
    // original plus the level-0 units, so checking against the verbatim
    // premise stays sound even when simplification drops an entire clause
    // (e.g. one whose literals are all false at level 0).
    proof_premise_.emplace_back(lits.begin(), lits.end());
  }

  // Simplify: sort, deduplicate, drop false literals, detect tautology and
  // clauses already satisfied at level 0.
  std::vector<Lit> c(lits.begin(), lits.end());
  std::sort(c.begin(), c.end(),
            [](Lit a, Lit b) { return a.code() < b.code(); });
  std::vector<Lit> simplified;
  simplified.reserve(c.size());
  Lit prev = Lit::undef;
  for (Lit l : c) {
    assert(l.var() >= 0 && l.var() < num_vars());
    if (value(l) == LBool::True || l == ~prev) {
      return true;  // Satisfied or tautological.
    }
    if (value(l) == LBool::False || l == prev) {
      continue;  // Falsified at level 0 or duplicate.
    }
    simplified.push_back(l);
    prev = l;
  }

  if (simplified.empty()) {
    ok_ = false;
    return false;
  }
  if (simplified.size() == 1) {
    unchecked_enqueue(simplified[0], nullptr);
    ok_ = (propagate() == nullptr);
    return ok_;
  }

  auto clause = std::make_unique<Clause>();
  clause->lits = std::move(simplified);
  attach_clause(clause.get());
  clauses_.push_back(std::move(clause));
  return true;
}

void Solver::attach_clause(ClauseRef c) {
  assert(c->lits.size() >= 2);
  watches_[(~c->lits[0]).code()].push_back({c, c->lits[1]});
  watches_[(~c->lits[1]).code()].push_back({c, c->lits[0]});
}

void Solver::detach_clause(ClauseRef c) {
  for (Lit w : {c->lits[0], c->lits[1]}) {
    auto& ws = watches_[(~w).code()];
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].clause == c) {
        ws[i] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

void Solver::unchecked_enqueue(Lit l, ClauseRef from) {
  assert(value(l) == LBool::Undef);
  const Var v = l.var();
  assigns_[v] = lbool_from(!l.sign());
  level_[v] = decision_level();
  reason_[v] = from;
  trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate() {
  ClauseRef conflict = nullptr;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[p.code()];
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      if (value(w.blocker) == LBool::True) {
        ws[j++] = ws[i++];
        continue;
      }
      Clause& c = *w.clause;
      const Lit false_lit = ~p;
      if (c.lits[0] == false_lit) {
        std::swap(c.lits[0], c.lits[1]);
      }
      assert(c.lits[1] == false_lit);
      ++i;

      const Lit first = c.lits[0];
      const Watcher keep{w.clause, first};
      if (first != w.blocker && value(first) == LBool::True) {
        ws[j++] = keep;
        continue;
      }

      bool rewatched = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != LBool::False) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).code()].push_back(keep);
          rewatched = true;
          break;
        }
      }
      if (rewatched) {
        continue;
      }

      // Clause is unit under the assignment, or conflicting.
      ws[j++] = keep;
      if (value(first) == LBool::False) {
        conflict = w.clause;
        qhead_ = trail_.size();
        while (i < ws.size()) {
          ws[j++] = ws[i++];
        }
      } else {
        unchecked_enqueue(first, w.clause);
      }
    }
    ws.resize(j);
  }
  return conflict;
}

int Solver::compute_lbd(std::span<const Lit> lits) {
  std::vector<int> levels;
  levels.reserve(lits.size());
  for (Lit l : lits) {
    levels.push_back(level_[l.var()]);
  }
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  return static_cast<int>(levels.size());
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& out_learnt,
                     int& out_btlevel, int& out_lbd) {
  int path_count = 0;
  Lit p = Lit::undef;
  out_learnt.clear();
  out_learnt.push_back(Lit::undef);  // Slot for the asserting literal.
  int index = static_cast<int>(trail_.size()) - 1;
  ClauseRef c = conflict;

  do {
    assert(c != nullptr);
    if (c->learnt) {
      clause_bump_activity(*c);
    }
    const std::size_t start = (p == Lit::undef) ? 0 : 1;
    for (std::size_t k = start; k < c->lits.size(); ++k) {
      const Lit q = c->lits[k];
      const Var qv = q.var();
      if (!seen_[qv] && level_[qv] > 0) {
        var_bump_activity(qv);
        seen_[qv] = true;
        if (level_[qv] >= decision_level()) {
          ++path_count;
        } else {
          out_learnt.push_back(q);
        }
      }
    }
    while (!seen_[trail_[index].var()]) {
      --index;
    }
    p = trail_[index];
    --index;
    c = reason_[p.var()];
    seen_[p.var()] = false;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Conflict-clause minimization: drop literals implied by the rest.
  analyze_toclear_ = out_learnt;
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    abstract_levels |= std::uint32_t{1} << (level_[out_learnt[i].var()] & 31);
  }
  std::size_t j = 1;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    if (reason_[out_learnt[i].var()] == nullptr ||
        !lit_redundant(out_learnt[i], abstract_levels)) {
      out_learnt[j++] = out_learnt[i];
    }
  }
  out_learnt.resize(j);

  // Find the backtrack level: highest level among the non-asserting lits.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i) {
      if (level_[out_learnt[i].var()] > level_[out_learnt[max_i].var()]) {
        max_i = i;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level_[out_learnt[1].var()];
  }

  out_lbd = compute_lbd(out_learnt);

  for (Lit l : analyze_toclear_) {
    seen_[l.var()] = false;
  }
}

bool Solver::lit_redundant(Lit lit, std::uint32_t abstract_levels) {
  std::vector<Lit> stack{lit};
  const std::size_t top = analyze_toclear_.size();
  while (!stack.empty()) {
    const Lit q = stack.back();
    stack.pop_back();
    assert(reason_[q.var()] != nullptr);
    const Clause& c = *reason_[q.var()];
    for (std::size_t k = 1; k < c.lits.size(); ++k) {
      const Lit l = c.lits[k];
      const Var lv = l.var();
      if (!seen_[lv] && level_[lv] > 0) {
        const std::uint32_t abstract =
            std::uint32_t{1} << (level_[lv] & 31);
        if (reason_[lv] != nullptr && (abstract & abstract_levels) != 0) {
          seen_[lv] = true;
          stack.push_back(l);
          analyze_toclear_.push_back(l);
        } else {
          for (std::size_t i = top; i < analyze_toclear_.size(); ++i) {
            seen_[analyze_toclear_[i].var()] = false;
          }
          analyze_toclear_.resize(top);
          return false;
        }
      }
    }
  }
  return true;
}

void Solver::cancel_until(int level) {
  if (decision_level() <= level) {
    return;
  }
  for (int c = static_cast<int>(trail_.size()) - 1; c >= trail_lim_[level];
       --c) {
    const Var v = trail_[c].var();
    assigns_[v] = LBool::Undef;
    polarity_[v] = trail_[c].sign();
    reason_[v] = nullptr;
    if (heap_pos_[v] == -1) {
      heap_insert(v);
    }
  }
  qhead_ = static_cast<std::size_t>(trail_lim_[level]);
  trail_.resize(static_cast<std::size_t>(trail_lim_[level]));
  trail_lim_.resize(static_cast<std::size_t>(level));
}

Lit Solver::pick_branch_lit() {
  if (config_.random_branch_freq > 0.0 && num_vars() > 0) {
    const double draw =
        static_cast<double>(rng_next() >> 11) * 0x1.0p-53;  // [0, 1)
    if (draw < config_.random_branch_freq) {
      const Var v = static_cast<Var>(rng_next() %
                                     static_cast<std::uint64_t>(num_vars()));
      if (value(v) == LBool::Undef) {
        return Lit(v, polarity_[v]);
      }
    }
  }
  while (!heap_empty()) {
    const Var v = heap_pop();
    if (value(v) == LBool::Undef) {
      return Lit(v, polarity_[v]);
    }
  }
  return Lit::undef;
}

void Solver::var_bump_activity(Var v) {
  var_activity_[v] += var_inc_;
  if (var_activity_[v] > kActivityRescaleLimit) {
    rescale_var_activity();
  }
  if (heap_pos_[v] != -1) {
    heap_update(v);
  }
}

void Solver::rescale_var_activity() {
  for (auto& a : var_activity_) {
    a *= 1e-100;
  }
  var_inc_ *= 1e-100;
}

void Solver::clause_bump_activity(Clause& c) {
  c.activity += clause_inc_;
  if (c.activity > kActivityRescaleLimit) {
    for (auto& learnt : learnts_) {
      learnt->activity *= 1e-100;
    }
    clause_inc_ *= 1e-100;
  }
}

void Solver::reduce_db() {
  // Order learned clauses worst-first: high LBD, then low activity.
  std::vector<Clause*> ordered;
  ordered.reserve(learnts_.size());
  for (auto& c : learnts_) {
    ordered.push_back(c.get());
  }
  std::sort(ordered.begin(), ordered.end(), [](const Clause* a,
                                               const Clause* b) {
    if (a->lbd != b->lbd) {
      return a->lbd > b->lbd;
    }
    return a->activity < b->activity;
  });

  const auto locked = [&](const Clause* c) {
    const Lit first = c->lits[0];
    return reason_[first.var()] == c && value(first) == LBool::True;
  };

  std::size_t to_remove = ordered.size() / 2;
  for (Clause* c : ordered) {
    if (to_remove == 0) {
      break;
    }
    if (c->lbd <= 2 || c->lits.size() == 2 || locked(c)) {
      continue;
    }
    c->removed = true;
    if (proof_logging_) {
      proof_log_clause(c->lits, /*deletion=*/true);
    }
    detach_clause(c);
    --to_remove;
    ++stats_.removed_clauses;
  }

  std::erase_if(learnts_,
                [](const std::unique_ptr<Clause>& c) { return c->removed; });
}

Solver::SearchStatus Solver::search(std::uint64_t conflicts_allowed,
                                    std::span<const Lit> assumptions) {
  std::uint64_t conflict_count = 0;
  const std::size_t max_learnts =
      std::max<std::size_t>(5000, clauses_.size() * 2);

  for (;;) {
    const ClauseRef conflict = propagate();
    if (conflict != nullptr) {
      ++stats_.conflicts;
      ++conflict_count;
      if (decision_level() == 0) {
        ok_ = false;
        return SearchStatus::Unsat;
      }
      if ((conflict_count & 63) == 0 && interrupted()) {
        return SearchStatus::Interrupted;
      }
      std::vector<Lit> learnt;
      int backtrack_level = 0;
      int lbd = 0;
      analyze(conflict, learnt, backtrack_level, lbd);
      if (proof_logging_) {
        // First-UIP clauses (with recursive minimization) are reverse unit
        // propagation consequences of the clause database at learn time,
        // so each logged addition passes a RUP check.
        proof_log_clause(learnt, /*deletion=*/false);
      }
      cancel_until(backtrack_level);
      if (learnt.size() == 1) {
        unchecked_enqueue(learnt[0], nullptr);
      } else {
        auto clause = std::make_unique<Clause>();
        clause->lits = std::move(learnt);
        clause->learnt = true;
        clause->lbd = lbd;
        ClauseRef ref = clause.get();
        attach_clause(ref);
        clause_bump_activity(*ref);
        learnts_.push_back(std::move(clause));
        ++stats_.learned_clauses;
        unchecked_enqueue(ref->lits[0], ref);
      }
      var_decay_activity();
      clause_decay_activity();
    } else {
      if (conflict_count >= conflicts_allowed) {
        cancel_until(0);
        return SearchStatus::Restart;
      }
      if (learnts_.size() >= max_learnts + trail_.size()) {
        reduce_db();
      }

      Lit next = Lit::undef;
      while (decision_level() < static_cast<int>(assumptions.size())) {
        const Lit a = assumptions[static_cast<std::size_t>(decision_level())];
        if (value(a) == LBool::True) {
          new_decision_level();  // Already implied; dummy level.
        } else if (value(a) == LBool::False) {
          return SearchStatus::Unsat;  // Assumptions are contradictory.
        } else {
          next = a;
          break;
        }
      }
      if (next == Lit::undef) {
        ++stats_.decisions;
        if ((stats_.decisions & 1023) == 0 && interrupted()) {
          return SearchStatus::Interrupted;
        }
        next = pick_branch_lit();
        if (next == Lit::undef) {
          return SearchStatus::Sat;  // Full assignment found.
        }
      }
      new_decision_level();
      unchecked_enqueue(next, nullptr);
    }
  }
}

bool Solver::solve(std::span<const Lit> assumptions) {
  const LBool result = solve_limited(assumptions, conflict_budget_);
  if (result == LBool::Undef) {
    throw SolveInterrupted{};
  }
  return result == LBool::True;
}

LBool Solver::solve_limited(std::span<const Lit> assumptions,
                            std::uint64_t max_conflicts) {
  const SolveStatsObs stats_obs(stats_);
  model_.clear();
  if (proof_logging_) {
    last_proof_.reset();
  }
  if (!ok_) {
    if (proof_logging_) {
      proof_snapshot(assumptions);
    }
    return LBool::False;
  }
  const std::uint64_t conflicts_at_start = stats_.conflicts;
  for (std::uint64_t restart = 1;; ++restart) {
    if (interrupted()) {
      cancel_until(0);
      return LBool::Undef;
    }
    std::uint64_t chunk = config_.restart_base * luby(restart);
    if (max_conflicts != 0) {
      const std::uint64_t used = stats_.conflicts - conflicts_at_start;
      if (used >= max_conflicts) {
        cancel_until(0);
        return LBool::Undef;
      }
      chunk = std::min(chunk, max_conflicts - used);
    }
    const SearchStatus status = search(chunk, assumptions);
    if (status == SearchStatus::Restart) {
      ++stats_.restarts;
      continue;
    }
    if (status == SearchStatus::Interrupted) {
      cancel_until(0);
      return LBool::Undef;
    }
    const bool satisfiable = (status == SearchStatus::Sat);
    if (satisfiable) {
      model_.resize(static_cast<std::size_t>(num_vars()));
      for (Var v = 0; v < num_vars(); ++v) {
        model_[static_cast<std::size_t>(v)] = (value(v) == LBool::True);
      }
    }
    cancel_until(0);
    if (!satisfiable && proof_logging_) {
      proof_snapshot(assumptions);
    }
    return satisfiable ? LBool::True : LBool::False;
  }
}

void Solver::set_proof_logging(bool enable) {
  if (enable && !proof_logging_) {
    // Clauses added before logging began are summarized by the current
    // simplified database — a consequence of the originals, so a
    // refutation of it refutes the original formula too.
    proof_premise_ = problem_clauses();
    proof_drat_.clear();
    last_proof_.reset();
  }
  proof_logging_ = enable;
}

void Solver::proof_log_clause(std::span<const Lit> lits, bool deletion) {
  if (deletion) {
    proof_drat_ += "d ";
  }
  for (Lit l : lits) {
    const int dimacs = l.sign() ? -(l.var() + 1) : (l.var() + 1);
    proof_drat_ += std::to_string(dimacs);
    proof_drat_ += ' ';
  }
  proof_drat_ += "0\n";
}

void Solver::proof_snapshot(std::span<const Lit> assumptions) {
  if (obs::enabled()) {
    static obs::Counter& proof_bytes =
        obs::Registry::instance().counter("sat.proof.bytes");
    proof_bytes.add(proof_drat_.size());
  }
  UnsatProof proof;
  proof.premise = proof_premise_;
  proof.assumptions.assign(assumptions.begin(), assumptions.end());
  proof.drat = proof_drat_;
  // The terminating empty clause goes into the snapshot only: for an
  // assumption-based UNSAT it is a consequence of premise + assumptions,
  // not of the formula alone, so it must not pollute the persistent log
  // that later queries keep extending.
  proof.drat += "0\n";
  last_proof_ = std::move(proof);
}

std::vector<std::vector<Lit>> Solver::problem_clauses() const {
  std::vector<std::vector<Lit>> out;
  out.reserve(clauses_.size() + trail_.size());
  // Level-0 units (original units and their consequences).
  const std::size_t level0_end =
      trail_lim_.empty() ? trail_.size()
                         : static_cast<std::size_t>(trail_lim_[0]);
  for (std::size_t i = 0; i < level0_end; ++i) {
    out.push_back({trail_[i]});
  }
  for (const auto& c : clauses_) {
    out.push_back(c->lits);
  }
  return out;
}

bool Solver::model_value(Var v) const {
  assert(!model_.empty());
  return model_[static_cast<std::size_t>(v)];
}

// --- Indexed binary max-heap on variable activity -------------------------

void Solver::heap_insert(Var v) {
  assert(heap_pos_[v] == -1);
  heap_pos_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_pos_[v]);
}

void Solver::heap_update(Var v) {
  assert(heap_pos_[v] != -1);
  heap_sift_up(heap_pos_[v]);
}

Var Solver::heap_pop() {
  assert(!heap_.empty());
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_sift_down(0);
  }
  return top;
}

void Solver::heap_sift_up(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (!heap_lt(v, heap_[static_cast<std::size_t>(parent)])) {
      break;
    }
    heap_[static_cast<std::size_t>(i)] =
        heap_[static_cast<std::size_t>(parent)];
    heap_pos_[heap_[static_cast<std::size_t>(i)]] = i;
    i = parent;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[v] = i;
}

void Solver::heap_sift_down(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  const int size = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= size) {
      break;
    }
    if (child + 1 < size && heap_lt(heap_[static_cast<std::size_t>(child + 1)],
                                    heap_[static_cast<std::size_t>(child)])) {
      ++child;
    }
    if (!heap_lt(heap_[static_cast<std::size_t>(child)], v)) {
      break;
    }
    heap_[static_cast<std::size_t>(i)] =
        heap_[static_cast<std::size_t>(child)];
    heap_pos_[heap_[static_cast<std::size_t>(i)]] = i;
    i = child;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[v] = i;
}

}  // namespace ftsp::sat
