#include "qec/state_context.hpp"

#include <gtest/gtest.h>

#include "qec/code_library.hpp"

namespace ftsp::qec {
namespace {

TEST(StateContext, ZeroStateAddsLogicalZToZSide) {
  const CssCode code = steane();
  const StateContext state(code, LogicalBasis::Zero);
  // Z side grows by k generators, X side stays.
  EXPECT_EQ(state.stabilizer_generators(PauliType::Z).rows(),
            code.hz().rows() + code.num_logical());
  EXPECT_EQ(state.stabilizer_generators(PauliType::X).rows(),
            code.hx().rows());
  // Z_L = Z1 Z2 Z3 is a state stabilizer of |0>_L.
  EXPECT_TRUE(state.stabilizer_span(PauliType::Z)
                  .contains(f2::BitVec::from_string("1110000")));
}

TEST(StateContext, PlusStateAddsLogicalXToXSide) {
  const CssCode code = steane();
  const StateContext state(code, LogicalBasis::Plus);
  EXPECT_EQ(state.stabilizer_generators(PauliType::X).rows(),
            code.hx().rows() + code.num_logical());
  EXPECT_EQ(state.stabilizer_generators(PauliType::Z).rows(),
            code.hz().rows());
}

TEST(StateContext, LogicalZIsHarmlessOnZeroState) {
  const CssCode code = steane();
  const StateContext state(code, LogicalBasis::Zero);
  const f2::BitVec zl = code.logical_z().row(0);
  // Z_L acts trivially on |0>_L: reduced weight 0.
  EXPECT_EQ(state.reduced_weight(PauliType::Z, zl), 0u);
  // X_L flips the logical state: dangerous (weight d_x >= 3 reduced).
  const f2::BitVec xl = code.logical_x().row(0);
  EXPECT_GE(state.reduced_weight(PauliType::X, xl), 3u);
  EXPECT_TRUE(state.is_dangerous(PauliType::X, xl));
}

TEST(StateContext, SingleQubitErrorsAreNeverDangerous) {
  for (const auto& code : all_library_codes()) {
    const StateContext state(code, LogicalBasis::Zero);
    for (std::size_t q = 0; q < code.num_qubits(); ++q) {
      f2::BitVec e(code.num_qubits());
      e.set(q);
      EXPECT_FALSE(state.is_dangerous(PauliType::X, e))
          << code.name() << " X" << q;
      EXPECT_FALSE(state.is_dangerous(PauliType::Z, e))
          << code.name() << " Z" << q;
    }
  }
}

TEST(StateContext, StabilizersAreHarmless) {
  const CssCode code = shor();
  const StateContext state(code, LogicalBasis::Zero);
  for (std::size_t i = 0; i < code.hx().rows(); ++i) {
    EXPECT_EQ(state.reduced_weight(PauliType::X, code.hx().row(i)), 0u);
  }
  for (std::size_t j = 0; j < code.hz().rows(); ++j) {
    EXPECT_EQ(state.reduced_weight(PauliType::Z, code.hz().row(j)), 0u);
  }
}

TEST(StateContext, SteaneHookSuffixIsHarmless) {
  // The motivating example for measuring Z_L = Z1Z2Z3 unflagged: the hook
  // suffix Z2 Z3 is equivalent to Z1 (weight 1) modulo Z_L itself.
  const CssCode code = steane();
  const StateContext state(code, LogicalBasis::Zero);
  const f2::BitVec suffix = f2::BitVec::from_string("0110000");
  EXPECT_EQ(state.reduced_weight(PauliType::Z, suffix), 1u);
  EXPECT_FALSE(state.is_dangerous(PauliType::Z, suffix));
}

TEST(StateContext, WeightTwoXErrorsOnSteaneAreDangerous) {
  const CssCode code = steane();
  const StateContext state(code, LogicalBasis::Zero);
  // X1 X2 cannot be reduced below weight 2 for the Steane |0>_L.
  const f2::BitVec e = f2::BitVec::from_string("1100000");
  EXPECT_EQ(state.reduced_weight(PauliType::X, e), 2u);
  EXPECT_TRUE(state.is_dangerous(PauliType::X, e));
}

TEST(StateContext, DetectorGeneratorsAreOppositeSide) {
  const CssCode code = surface3();
  const StateContext state(code, LogicalBasis::Zero);
  EXPECT_EQ(state.detector_generators(PauliType::X).rows(),
            code.hz().rows() + code.num_logical());
  EXPECT_EQ(state.detector_generators(PauliType::Z).rows(),
            code.hx().rows());
}

TEST(StateContext, CosetKeyConsistentWithEquivalence) {
  const CssCode code = steane();
  const StateContext state(code, LogicalBasis::Zero);
  const f2::BitVec e = f2::BitVec::from_string("1010000");
  const f2::BitVec equivalent = e ^ code.hx().row(0);
  EXPECT_EQ(state.coset_key(PauliType::X, e),
            state.coset_key(PauliType::X, equivalent));
  EXPECT_EQ(state.reduced_weight(PauliType::X, e),
            state.reduced_weight(PauliType::X, equivalent));
}

TEST(StateContext, ReducedRepresentativeAchievesMinimum) {
  const CssCode code = tetrahedral();
  const StateContext state(code, LogicalBasis::Zero);
  const f2::BitVec e = code.hz().row(0) ^ f2::BitVec(15, {0});
  const f2::BitVec rep = state.reduced_representative(PauliType::Z, e);
  EXPECT_EQ(rep.popcount(), state.reduced_weight(PauliType::Z, e));
  EXPECT_EQ(state.coset_key(PauliType::Z, rep),
            state.coset_key(PauliType::Z, e));
}

TEST(StateContext, EveryDangerousErrorIsDetectable) {
  // Sanity for the synthesis feasibility argument in DESIGN.md: dangerous
  // type-t errors always anticommute with some detector-span element,
  // checked here for weight-2 X errors on all codes.
  for (const auto& code : all_library_codes()) {
    const StateContext state(code, LogicalBasis::Zero);
    const auto& detectors = state.detector_generators(PauliType::X);
    const std::size_t n = code.num_qubits();
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        f2::BitVec e(n);
        e.set(a);
        e.set(b);
        if (!state.is_dangerous(PauliType::X, e)) {
          continue;
        }
        bool detected = false;
        for (std::size_t r = 0; r < detectors.rows(); ++r) {
          detected = detected || detectors.row(r).dot(e);
        }
        EXPECT_TRUE(detected) << code.name() << " X error on " << a << ","
                              << b;
      }
    }
  }
}

}  // namespace
}  // namespace ftsp::qec
