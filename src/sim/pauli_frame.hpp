#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "qec/pauli.hpp"

namespace ftsp::sim {

/// Pauli-frame state for exact fault propagation through Clifford circuits.
///
/// Every circuit synthesized here prepares a stabilizer state and measures
/// stabilizers of it, so all noiseless measurement outcomes are
/// deterministic (+1). Noise is a set of Pauli faults; their effect is
/// fully captured by propagating the accumulated Pauli `error` through the
/// circuit and recording, per measurement, whether the outcome is flipped
/// relative to the noiseless reference. This makes the frame simulation
/// *exact*, not an approximation (cross-validated against the full
/// stabilizer tableau simulator in the tests).
struct PauliFrame {
  qec::Pauli error;            ///< Accumulated Pauli on all qubits.
  std::vector<bool> outcomes;  ///< Per classical bit: flipped vs. noiseless?

  explicit PauliFrame(const circuit::Circuit& c)
      : error(c.num_qubits()), outcomes(c.num_cbits(), false) {}
  PauliFrame(std::size_t num_qubits, std::size_t num_cbits)
      : error(num_qubits), outcomes(num_cbits, false) {}
};

/// Advances the frame across one gate (conjugation of the error by the
/// gate; resets clear the error, measurements record flips).
void apply_gate(PauliFrame& frame, const circuit::Gate& gate);

/// Runs a whole circuit (convenience for fault-free propagation).
void apply_circuit(PauliFrame& frame, const circuit::Circuit& c);

}  // namespace ftsp::sim
