#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "circuit/circuit.hpp"
#include "core/proof_capture.hpp"
#include "qec/coupling.hpp"
#include "qec/state_context.hpp"
#include "sat/parallel_solver.hpp"

namespace ftsp::core {

/// What actually happened inside `synthesize_prep` — the provenance of
/// the returned circuit. Attach via `PrepSynthOptions::report` (like the
/// SAT telemetry sinks); fields are only ever set, never cleared, so one
/// report can aggregate several calls.
struct PrepSynthReport {
  /// The SAT-optimal search was requested but gave up (max_cnots
  /// exhausted or conflict budget interrupted) without a witness.
  bool sat_search_exhausted = false;
  /// The returned circuit came from the heuristic although Method::
  /// Optimal was requested — the silent-fallback case made loud.
  bool heuristic_fallback = false;
};

/// Options for logical basis-state preparation synthesis.
struct PrepSynthOptions {
  enum class Method {
    Heuristic,  ///< Gauss-elimination construction with column-order search.
    Optimal,    ///< SAT-based CNOT-count-minimal synthesis.
  };
  Method method = Method::Heuristic;

  /// Heuristic: number of seeded random column orders tried in addition to
  /// the deterministic ones.
  std::size_t shuffle_tries = 64;
  std::uint64_t seed = 0xf7e9u;

  /// Optimal: conflict budget per gate-count query (0 = unlimited; both
  /// engines re-arm it for each queried gate count) and the CNOT count
  /// at which the search gives up and falls back to the heuristic
  /// result.
  std::uint64_t sat_conflict_budget = 400000;
  std::size_t max_cnots = 24;

  /// Optimal: allow the exact subspace-BFS shortcut for small state
  /// spaces. Disable to force the SAT path (mainly for tests/benches).
  bool allow_bfs = true;

  /// SAT engine selection (gate-count sweeps, portfolio, cache) for the
  /// Optimal method. `incremental` defaults to false here — unlike the
  /// verification/correction weight sweeps (pure cardinality bounds,
  /// where skeleton reuse wins outright), the gate-count bound changes
  /// the formula structure, and measurements show the activation-gated
  /// incremental encoding proves the intermediate UNSAT bounds ~5x
  /// slower than per-bound re-encoding. The incremental path stays
  /// available for experimentation.
  sat::EngineOptions engine{.incremental = false};

  /// Device coupling map over the data qubits; null (or a structurally
  /// all-to-all map) leaves synthesis unconstrained and bit-identical to
  /// historical behavior. Constrained maps restrict every CNOT to
  /// coupled pairs: the SAT/BFS searches only encode legal gate slots,
  /// the heuristic filters its candidates and *throws* (instead of
  /// silently emitting illegal gates) when no legal circuit is found,
  /// and an exhausted SAT search refuses the heuristic fallback.
  std::shared_ptr<const qec::CouplingMap> coupling;

  /// Optional provenance sink (see `PrepSynthReport`).
  PrepSynthReport* report = nullptr;

  /// Optional proof sink; same contract as
  /// `VerificationSynthOptions::proof_sink`. The SAT-optimal gate-count
  /// sweep records a checked DRAT refutation of its final UNSAT leg;
  /// the heuristic, BFS, cache-hit and trivial-lower-bound paths record
  /// honest absent entries.
  ProofSink* proof_sink = nullptr;
  /// Stage tag of recorded proofs.
  std::string proof_label = "prep";
};

/// Synthesizes a unitary (generally non-fault-tolerant) preparation circuit
/// for the logical basis state described by `state`: each qubit is
/// initialized in |0> or |+> and a CNOT network creates the encoded state.
///
/// The circuit realizes the X-side state stabilizer span: CNOTs map
/// X_c -> X_c X_t, so the initial single-qubit X stabilizers of the |+>
/// qubits must be driven to a generating set of the span; the Z side then
/// follows automatically (it is the orthogonal complement for CSS-type
/// stabilizer states). Correctness is verified in the tests with the full
/// tableau simulator.
circuit::Circuit synthesize_prep(const qec::StateContext& state,
                                 const PrepSynthOptions& options = {});

/// SAT-optimal preparation: returns nullopt if no circuit with at most
/// `options.max_cnots` CNOTs was found within budget.
std::optional<circuit::Circuit> synthesize_prep_optimal(
    const qec::StateContext& state, const PrepSynthOptions& options = {});

}  // namespace ftsp::core
