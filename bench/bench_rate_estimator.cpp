// Naive-vs-stratified logical-error-rate estimation: the acceptance
// benchmark of the fault-sector estimator. For each code it runs
//
//   (a) the naive batched Monte-Carlo sampler at p (a fixed shot
//       budget; its Clopper-Pearson interval is the correctness bar),
//   (b) the stratified fault-sector estimator (exhaustive k <= 2
//       sectors + adaptive conditional sampling),
//
// and gates on two hard criteria:
//   * the stratified estimate lies inside the naive sampler's 99%
//     Clopper-Pearson interval (when the naive run saw any fails), and
//   * the equivalent-shot reduction — naive shots needed for the
//     stratified std error, per lane the estimator actually simulated —
//     is >= 50x at p = 1e-3,
// plus a bit-identity check of the u64 and 256-bit estimator paths.
//
// Plain chrono main (no Google Benchmark dependency), JSON-per-code
// output consumed by the CI bench-smoke job (BENCH_pr4.json):
//   bench_rate_estimator [--smoke] [--all] [--p RATE] [--naive-shots N]
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "core/protocol.hpp"
#include "core/rate_estimator.hpp"
#include "core/samplers.hpp"
#include "decoder/lookup_decoder.hpp"
#include "qec/code_library.hpp"
#include "sim/fault_sectors.hpp"

namespace {

using namespace ftsp;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// %.6e prints "inf" (invalid JSON) when the estimate is fully
/// exhaustive (variance 0); clamp like the serving front end does.
double json_safe(double value) {
  constexpr double kCap = 1e18;
  return std::isfinite(value) ? std::min(value, kCap) : kCap;
}

bool identical(const core::RateEstimate& a, const core::RateEstimate& b) {
  if (a.p_logical != b.p_logical || a.std_error != b.std_error ||
      a.sectors.size() != b.sectors.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.sectors.size(); ++i) {
    if (a.sectors[i].fails != b.sectors[i].fails ||
        a.sectors[i].shots != b.sectors[i].shots ||
        a.sectors[i].fail_rate != b.sectors[i].fail_rate) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool all = false;
  double p = 1e-3;
  std::size_t naive_shots = std::size_t{1} << 22;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--all") == 0) {
      all = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      naive_shots = std::size_t{1} << 20;
    } else if (std::strcmp(argv[i], "--p") == 0 && i + 1 < argc) {
      p = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--naive-shots") == 0 && i + 1 < argc) {
      naive_shots = static_cast<std::size_t>(std::stoul(argv[++i]));
    }
  }

  std::vector<std::string> names = {"Steane", "Surface_3"};
  if (all) {
    names.clear();
    for (const auto& code : qec::all_library_codes()) {
      names.push_back(code.name());
    }
  }

  constexpr double kTargetReduction = 50.0;
  double worst_reduction = std::numeric_limits<double>::infinity();
  bool ok = true;
  std::printf("[\n");
  for (std::size_t c = 0; c < names.size(); ++c) {
    const auto code = qec::library_code_by_name(names[c]);
    const auto protocol =
        core::synthesize_protocol(code, qec::LogicalBasis::Zero);
    const core::Executor executor(protocol);
    const decoder::PerfectDecoder decoder(*protocol.code);

    // --- Naive batched Monte Carlo at a fixed budget.
    const auto t_naive = Clock::now();
    const auto batch =
        core::sample_protocol_batch(executor, decoder, p, naive_shots, 42);
    std::uint64_t naive_fails = 0;
    for (const auto& t : batch.trajectories) {
      naive_fails += t.x_fail;
    }
    const double naive_ms = ms_since(t_naive);
    const auto naive_interval =
        sim::clopper_pearson(naive_fails, naive_shots, 0.01);

    // --- Stratified estimator.
    core::RateOptions options;
    options.rel_err = 0.05;
    options.seed = 42;
    const auto t_strat = Clock::now();
    const auto estimate =
        core::estimate_logical_error_rate(executor, decoder, p, options);
    const double strat_ms = ms_since(t_strat);

    // --- u64 path must agree bit for bit with the (default) wide path.
    core::RateOptions narrow = options;
    narrow.width = core::WordWidth::W64;
    const bool widths_identical = identical(
        estimate,
        core::estimate_logical_error_rate(executor, decoder, p, narrow));

    // Equivalent-shot reduction: naive shots this std error is worth,
    // per lane the estimator actually simulated.
    const double spent = static_cast<double>(estimate.mc_shots) +
                         static_cast<double>(estimate.exhaustive_cases);
    const double reduction = estimate.equivalent_naive_shots / spent;
    worst_reduction = std::min(worst_reduction, reduction);

    const bool inside =
        naive_fails == 0 || (estimate.p_logical >= naive_interval.low &&
                             estimate.p_logical <= naive_interval.high);
    if (!inside || !widths_identical) {
      ok = false;
    }

    std::printf(
        "  {\"code\": \"%s\", \"p\": %g, "
        "\"naive_shots\": %zu, \"naive_fails\": %" PRIu64
        ", \"naive_ci\": [%.6e, %.6e], \"naive_ms\": %.3f, "
        "\"p_logical\": %.6e, \"std_error\": %.3e, "
        "\"mc_shots\": %" PRIu64 ", \"exhaustive_cases\": %" PRIu64
        ", \"strat_ms\": %.3f, \"equivalent_naive_shots\": %.6e, "
        "\"shot_reduction\": %.3e, \"inside_naive_ci\": %s, "
        "\"widths_identical\": %s}%s\n",
        names[c].c_str(), p, naive_shots, naive_fails, naive_interval.low,
        naive_interval.high, naive_ms, estimate.p_logical,
        estimate.std_error, estimate.mc_shots, estimate.exhaustive_cases,
        strat_ms, json_safe(estimate.equivalent_naive_shots),
        json_safe(reduction),
        inside ? "true" : "false", widths_identical ? "true" : "false",
        c + 1 < names.size() ? "," : "");
    if (!inside) {
      std::fprintf(stderr,
                   "FAIL: %s stratified estimate %.4e outside naive 99%% CI "
                   "[%.4e, %.4e]\n",
                   names[c].c_str(), estimate.p_logical, naive_interval.low,
                   naive_interval.high);
    }
    if (!widths_identical) {
      std::fprintf(stderr, "FAIL: %s u64 and SIMD paths diverged\n",
                   names[c].c_str());
    }
  }
  std::printf("]\n");
  std::fprintf(stderr,
               "worst equivalent-shot reduction: %.1fx (target >= %.0fx)\n",
               worst_reduction, kTargetReduction);
  if (worst_reduction < kTargetReduction) {
    ok = false;
  }
  return ok ? 0 : 1;
}
