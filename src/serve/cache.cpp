#include "serve/cache.hpp"

namespace ftsp::serve {

PayloadCache::Outcome PayloadCache::get_or_compute(
    const std::string& key, bool store,
    const std::function<std::string()>& compute) {
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = entries_.find(key); it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // Move to front.
      ++hits_;
      return {it->second->payload, /*cache_hit=*/true, /*coalesced=*/false};
    }
    if (const auto it = in_flight_.find(key); it != in_flight_.end()) {
      flight = it->second;
      ++coalesced_;
    } else {
      flight = std::make_shared<InFlight>();
      flight->future = flight->promise.get_future().share();
      in_flight_.emplace(key, flight);
      leader = true;
      ++misses_;
    }
  }

  if (!leader) {
    // Joined someone else's compute: the leader's result (or exception)
    // is ours too. get() rethrows the leader's exception here, so a
    // failed compute fails every coalesced request the same way.
    return {flight->future.get(), /*cache_hit=*/false, /*coalesced=*/true};
  }

  std::string payload;
  try {
    payload = compute();
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      in_flight_.erase(key);
    }
    flight->promise.set_exception(std::current_exception());
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    in_flight_.erase(key);
    if (store && capacity_bytes_ > 0) {
      insert_locked(key, payload);
    }
  }
  flight->promise.set_value(payload);
  return {std::move(payload), /*cache_hit=*/false, /*coalesced=*/false};
}

void PayloadCache::insert_locked(const std::string& key,
                                 const std::string& payload) {
  const std::size_t cost = key.size() + payload.size();
  if (cost > capacity_bytes_) {
    return;  // A single oversized entry would evict everything for nothing.
  }
  lru_.push_front({key, payload});
  entries_[key] = lru_.begin();
  bytes_ += cost;
  while (bytes_ > capacity_bytes_ && !lru_.empty()) {
    const CacheEntry& victim = lru_.back();
    bytes_ -= victim.key.size() + victim.payload.size();
    entries_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

PayloadCache::Stats PayloadCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.coalesced = coalesced_;
  stats.evictions = evictions_;
  stats.entries = entries_.size();
  stats.bytes = bytes_;
  return stats;
}

}  // namespace ftsp::serve
