#include "f2/bit_matrix.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace ftsp::f2 {

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols) : cols_(cols) {
  rows_.assign(rows, BitVec(cols));
}

BitMatrix BitMatrix::from_strings(std::initializer_list<std::string> rows) {
  return from_strings(std::vector<std::string>(rows));
}

BitMatrix BitMatrix::from_strings(const std::vector<std::string>& rows) {
  BitMatrix m;
  for (const auto& s : rows) {
    m.append_row(BitVec::from_string(s));
  }
  return m;
}

BitMatrix BitMatrix::identity(std::size_t n) {
  BitMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m.set(i, i);
  }
  return m;
}

void BitMatrix::append_row(BitVec row) {
  if (rows_.empty() && cols_ == 0) {
    cols_ = row.size();
  }
  if (row.size() != cols_) {
    throw std::invalid_argument("BitMatrix::append_row: width mismatch");
  }
  rows_.push_back(std::move(row));
}

void BitMatrix::append_rows(const BitMatrix& other) {
  for (std::size_t r = 0; r < other.rows(); ++r) {
    append_row(other.row(r));
  }
}

BitVec BitMatrix::column(std::size_t c) const {
  assert(c < cols_);
  BitVec col(rows());
  for (std::size_t r = 0; r < rows(); ++r) {
    if (rows_[r].get(c)) {
      col.set(r);
    }
  }
  return col;
}

BitMatrix BitMatrix::transposed() const {
  BitMatrix t(cols_, rows());
  for (std::size_t r = 0; r < rows(); ++r) {
    for (std::size_t c : rows_[r].ones()) {
      t.set(c, r);
    }
  }
  return t;
}

BitVec BitMatrix::multiply(const BitVec& v) const {
  if (v.size() != cols_) {
    throw std::invalid_argument("BitMatrix::multiply: size mismatch");
  }
  BitVec result(rows());
  for (std::size_t r = 0; r < rows(); ++r) {
    if (rows_[r].dot(v)) {
      result.set(r);
    }
  }
  return result;
}

BitMatrix BitMatrix::multiply(const BitMatrix& other) const {
  if (cols_ != other.rows()) {
    throw std::invalid_argument("BitMatrix::multiply: shape mismatch");
  }
  BitMatrix result(rows(), other.cols());
  for (std::size_t r = 0; r < rows(); ++r) {
    for (std::size_t k : rows_[r].ones()) {
      result.row(r) ^= other.row(k);
    }
  }
  return result;
}

void BitMatrix::add_row_to(std::size_t src, std::size_t dst) {
  assert(src < rows() && dst < rows());
  rows_[dst] ^= rows_[src];
}

void BitMatrix::swap_rows(std::size_t a, std::size_t b) {
  assert(a < rows() && b < rows());
  std::swap(rows_[a], rows_[b]);
}

void BitMatrix::remove_zero_rows() {
  std::vector<BitVec> kept;
  kept.reserve(rows_.size());
  for (auto& r : rows_) {
    if (r.any()) {
      kept.push_back(std::move(r));
    }
  }
  rows_ = std::move(kept);
}

std::string BitMatrix::to_string() const {
  std::string s;
  for (const auto& r : rows_) {
    s += r.to_string();
    s += '\n';
  }
  return s;
}

}  // namespace ftsp::f2
