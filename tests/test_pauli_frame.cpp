#include "sim/pauli_frame.hpp"

#include <gtest/gtest.h>

namespace ftsp::sim {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

TEST(PauliFrame, CnotPropagatesXToTarget) {
  Circuit c(2);
  c.cnot(0, 1);
  PauliFrame frame(c);
  frame.error.x.set(0);
  apply_circuit(frame, c);
  EXPECT_TRUE(frame.error.x.get(0));
  EXPECT_TRUE(frame.error.x.get(1));
  EXPECT_TRUE(frame.error.z.none());
}

TEST(PauliFrame, CnotPropagatesZToControl) {
  Circuit c(2);
  c.cnot(0, 1);
  PauliFrame frame(c);
  frame.error.z.set(1);
  apply_circuit(frame, c);
  EXPECT_TRUE(frame.error.z.get(0));
  EXPECT_TRUE(frame.error.z.get(1));
  EXPECT_TRUE(frame.error.x.none());
}

TEST(PauliFrame, CnotLeavesXOnTargetAlone) {
  Circuit c(2);
  c.cnot(0, 1);
  PauliFrame frame(c);
  frame.error.x.set(1);
  apply_circuit(frame, c);
  EXPECT_FALSE(frame.error.x.get(0));
  EXPECT_TRUE(frame.error.x.get(1));
}

TEST(PauliFrame, CnotLeavesZOnControlAlone) {
  Circuit c(2);
  c.cnot(0, 1);
  PauliFrame frame(c);
  frame.error.z.set(0);
  apply_circuit(frame, c);
  EXPECT_TRUE(frame.error.z.get(0));
  EXPECT_FALSE(frame.error.z.get(1));
}

TEST(PauliFrame, CnotPropagatesYToYY) {
  // Y on the control spreads its X part: Y_c -> Y_c X_t.
  Circuit c(2);
  c.cnot(0, 1);
  PauliFrame frame(c);
  frame.error.x.set(0);
  frame.error.z.set(0);
  apply_circuit(frame, c);
  EXPECT_TRUE(frame.error.x.get(0));
  EXPECT_TRUE(frame.error.z.get(0));
  EXPECT_TRUE(frame.error.x.get(1));
  EXPECT_FALSE(frame.error.z.get(1));
}

TEST(PauliFrame, HadamardSwapsXAndZ) {
  Circuit c(1);
  c.h(0);
  PauliFrame frame(c);
  frame.error.x.set(0);
  apply_circuit(frame, c);
  EXPECT_FALSE(frame.error.x.get(0));
  EXPECT_TRUE(frame.error.z.get(0));
}

TEST(PauliFrame, HadamardFixesY) {
  Circuit c(1);
  c.h(0);
  PauliFrame frame(c);
  frame.error.x.set(0);
  frame.error.z.set(0);
  apply_circuit(frame, c);
  EXPECT_TRUE(frame.error.x.get(0));
  EXPECT_TRUE(frame.error.z.get(0));
}

TEST(PauliFrame, ResetClearsError) {
  Circuit c(2);
  c.prep_z(0);
  c.prep_x(1);
  PauliFrame frame(c);
  frame.error.x.set(0);
  frame.error.z.set(0);
  frame.error.x.set(1);
  apply_circuit(frame, c);
  EXPECT_TRUE(frame.error.is_identity());
}

TEST(PauliFrame, MeasZFlippedByXAndY) {
  Circuit c(3);
  c.measure_z(0);
  c.measure_z(1);
  c.measure_z(2);
  PauliFrame frame(c);
  frame.error.x.set(0);            // X: flips.
  frame.error.x.set(1);
  frame.error.z.set(1);            // Y: flips.
  frame.error.z.set(2);            // Z: does not flip.
  apply_circuit(frame, c);
  EXPECT_TRUE(frame.outcomes[0]);
  EXPECT_TRUE(frame.outcomes[1]);
  EXPECT_FALSE(frame.outcomes[2]);
}

TEST(PauliFrame, MeasXFlippedByZAndY) {
  Circuit c(3);
  c.measure_x(0);
  c.measure_x(1);
  c.measure_x(2);
  PauliFrame frame(c);
  frame.error.z.set(0);
  frame.error.x.set(1);
  frame.error.z.set(1);
  frame.error.x.set(2);
  apply_circuit(frame, c);
  EXPECT_TRUE(frame.outcomes[0]);
  EXPECT_TRUE(frame.outcomes[1]);
  EXPECT_FALSE(frame.outcomes[2]);
}

TEST(PauliFrame, HookErrorMatchesPaperFigure1) {
  // Measuring a weight-4 Z stabilizer: a Z on the ancilla after the second
  // data CNOT propagates onto the remaining two data controls.
  Circuit c(5);  // Qubits 0-3 data, 4 ancilla.
  c.prep_z(4);
  c.cnot(0, 4);
  c.cnot(1, 4);
  c.cnot(2, 4);
  c.cnot(3, 4);
  c.measure_z(4);
  PauliFrame frame(c);
  std::size_t applied = 0;
  for (const Gate& g : c.gates()) {
    apply_gate(frame, g);
    ++applied;
    if (applied == 3) {  // After CNOT(1,4).
      frame.error.z.flip(4);
    }
  }
  EXPECT_EQ(frame.error.z.to_string().substr(0, 4), "0011");
  EXPECT_FALSE(frame.outcomes[0]);  // Z on the ancilla: outcome unaffected.
}

}  // namespace
}  // namespace ftsp::sim
