#pragma once

#include <cstdint>
#include <functional>

namespace ftsp::sat {

/// A Boolean variable, numbered from 0.
using Var = std::int32_t;

constexpr Var kUndefVar = -1;

/// A literal: a variable or its negation, packed as `2*var + sign`.
/// `sign() == true` means the negated literal.
class Lit {
 public:
  constexpr Lit() = default;
  constexpr Lit(Var v, bool negated) : code_(2 * v + (negated ? 1 : 0)) {}

  constexpr Var var() const { return code_ >> 1; }
  constexpr bool sign() const { return (code_ & 1) != 0; }
  constexpr std::int32_t code() const { return code_; }

  constexpr Lit operator~() const { return from_code(code_ ^ 1); }
  constexpr bool operator==(const Lit&) const = default;

  static constexpr Lit from_code(std::int32_t code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  static const Lit undef;

 private:
  std::int32_t code_ = -2;
};

inline constexpr Lit Lit::undef = {};

/// Positive literal of `v`.
constexpr Lit pos(Var v) { return Lit(v, false); }
/// Negative literal of `v`.
constexpr Lit neg(Var v) { return Lit(v, true); }

/// Three-valued logic for partial assignments.
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

constexpr LBool lbool_from(bool b) { return b ? LBool::True : LBool::False; }

constexpr LBool operator^(LBool v, bool flip) {
  if (v == LBool::Undef) {
    return v;
  }
  return lbool_from((v == LBool::True) != flip);
}

}  // namespace ftsp::sat

template <>
struct std::hash<ftsp::sat::Lit> {
  std::size_t operator()(const ftsp::sat::Lit& l) const noexcept {
    return std::hash<std::int32_t>{}(l.code());
  }
};
