#include "qec/coupling.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "util/hash.hpp"

namespace ftsp::qec {

using f2::BitVec;

CouplingMap::CouplingMap(std::string name, std::size_t n)
    : name_(std::move(name)) {
  if (n == 0) {
    throw std::invalid_argument("coupling map: need at least one site");
  }
  adjacency_.assign(n, BitVec(n));
}

void CouplingMap::add_edge(std::size_t a, std::size_t b) {
  const std::size_t n = num_sites();
  if (a >= n || b >= n) {
    throw std::invalid_argument("coupling map: edge endpoint out of range");
  }
  if (a == b) {
    throw std::invalid_argument("coupling map: self-loop");
  }
  if (!adjacency_[a].get(b)) {
    adjacency_[a].set(b);
    adjacency_[b].set(a);
    ++num_edges_;
  }
}

CouplingMap CouplingMap::all_to_all(std::size_t n) {
  CouplingMap map("all", n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      map.add_edge(a, b);
    }
  }
  return map;
}

CouplingMap CouplingMap::linear(std::size_t n) {
  CouplingMap map("linear", n);
  for (std::size_t q = 0; q + 1 < n; ++q) {
    map.add_edge(q, q + 1);
  }
  return map;
}

CouplingMap CouplingMap::ring(std::size_t n) {
  CouplingMap map("ring", n);
  for (std::size_t q = 0; q + 1 < n; ++q) {
    map.add_edge(q, q + 1);
  }
  if (n > 2) {
    map.add_edge(n - 1, 0);
  }
  return map;
}

CouplingMap CouplingMap::grid(std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("coupling map: grid needs rows, cols >= 1");
  }
  CouplingMap map("grid", rows * cols);
  const auto at = [cols](std::size_t r, std::size_t c) {
    return r * cols + c;
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        map.add_edge(at(r, c), at(r, c + 1));
      }
      if (r + 1 < rows) {
        map.add_edge(at(r, c), at(r + 1, c));
      }
    }
  }
  return map;
}

CouplingMap CouplingMap::grid(std::size_t n) {
  // Most-square factorization rows * cols = n with rows <= cols; primes
  // degrade to 1 x n (a linear chain), which is the honest grid of a
  // prime-sized register.
  std::size_t rows = 1;
  for (std::size_t r = 1; r * r <= n; ++r) {
    if (n % r == 0) {
      rows = r;
    }
  }
  return grid(rows, n / rows);
}

CouplingMap CouplingMap::heavy_hex(std::size_t n) {
  // Linear spine with pendant bridge sites: sites are numbered along the
  // spine, and every third spine site sprouts one degree-1 pendant
  // (IBM-style heavy-hex decoration, truncated to n sites). For n <= 3
  // this degenerates to the linear chain.
  CouplingMap map("heavy-hex", n);
  std::vector<std::size_t> spine;
  std::size_t next = 0;
  while (next < n) {
    spine.push_back(next);
    if (!spine.empty() && spine.size() % 3 == 0 && next + 1 < n) {
      ++next;  // Reserve the following index as this spine site's pendant.
      map.add_edge(spine.back(), next);
    }
    ++next;
  }
  for (std::size_t i = 0; i + 1 < spine.size(); ++i) {
    map.add_edge(spine[i], spine[i + 1]);
  }
  return map;
}

CouplingMap CouplingMap::from_edges(
    std::string name, std::size_t n,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
  CouplingMap map(std::move(name), n);
  for (const auto& [a, b] : edges) {
    map.add_edge(a, b);
  }
  return map;
}

const std::vector<std::string>& CouplingMap::builtin_names() {
  static const std::vector<std::string> names = {"all", "linear", "ring",
                                                 "grid", "heavy-hex"};
  return names;
}

bool CouplingMap::is_builtin_name(const std::string& name) {
  const auto& names = builtin_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

CouplingMap CouplingMap::builtin(const std::string& name, std::size_t n) {
  if (name == "all") {
    return all_to_all(n);
  }
  if (name == "linear") {
    return linear(n);
  }
  if (name == "ring") {
    return ring(n);
  }
  if (name == "grid") {
    return grid(n);
  }
  if (name == "heavy-hex") {
    return heavy_hex(n);
  }
  throw std::invalid_argument(
      "unknown coupling map '" + name +
      "' (builtins: all, linear, ring, grid, heavy-hex)");
}

bool CouplingMap::is_all_to_all() const {
  const std::size_t n = num_sites();
  return num_edges_ == n * (n - 1) / 2;
}

bool CouplingMap::allows(std::size_t a, std::size_t b) const {
  if (a >= num_sites() || b >= num_sites() || a == b) {
    return false;
  }
  return adjacency_[a].get(b);
}

std::vector<std::pair<std::size_t, std::size_t>> CouplingMap::edges() const {
  std::vector<std::pair<std::size_t, std::size_t>> list;
  list.reserve(num_edges_);
  for (std::size_t a = 0; a < num_sites(); ++a) {
    for (std::size_t b : adjacency_[a].ones()) {
      if (a < b) {
        list.emplace_back(a, b);
      }
    }
  }
  return list;
}

bool CouplingMap::is_connected_subset(const BitVec& support) const {
  if (support.size() != num_sites()) {
    throw std::invalid_argument("coupling map: support size mismatch");
  }
  const std::size_t start = support.lowest_set();
  if (start == support.size()) {
    return true;  // Empty support.
  }
  BitVec visited(num_sites());
  visited.set(start);
  BitVec frontier = visited;
  while (frontier.any()) {
    BitVec next(num_sites());
    for (std::size_t q : frontier.ones()) {
      next |= adjacency_[q];
    }
    next &= support;
    for (std::size_t q : visited.ones()) {
      next.set(q, false);
    }
    visited |= next;
    frontier = next;
  }
  return visited.popcount() == support.popcount();
}

namespace {

/// Backtracking extension of a partial walk: tries every unvisited
/// support site coupled to the walk's tail, in ascending order or in an
/// order drawn from `rng`.
bool extend_walk(const std::vector<f2::BitVec>& adjacency,
                 const BitVec& support, BitVec& visited,
                 std::vector<std::size_t>& path, std::size_t target_length,
                 std::mt19937_64* rng) {
  if (path.size() == target_length) {
    return true;
  }
  BitVec eligible = adjacency[path.back()];
  eligible &= support;
  for (std::size_t q : visited.ones()) {
    eligible.set(q, false);
  }
  std::vector<std::size_t> choices = eligible.ones();
  if (rng != nullptr) {
    std::shuffle(choices.begin(), choices.end(), *rng);
  }
  for (std::size_t next : choices) {
    visited.set(next);
    path.push_back(next);
    if (extend_walk(adjacency, support, visited, path, target_length, rng)) {
      return true;
    }
    path.pop_back();
    visited.set(next, false);
  }
  return false;
}

}  // namespace

std::vector<std::size_t> CouplingMap::walk_order_from(
    const BitVec& support, std::size_t start, std::mt19937_64* rng) const {
  if (support.size() != num_sites()) {
    throw std::invalid_argument("coupling map: support size mismatch");
  }
  if (!support.get(start)) {
    return {};
  }
  BitVec visited(num_sites());
  visited.set(start);
  std::vector<std::size_t> path = {start};
  if (extend_walk(adjacency_, support, visited, path, support.popcount(),
                  rng)) {
    return path;
  }
  return {};
}

std::vector<std::size_t> CouplingMap::walk_order(
    const BitVec& support) const {
  if (support.size() != num_sites()) {
    throw std::invalid_argument("coupling map: support size mismatch");
  }
  if (support.none()) {
    return {};
  }
  // The ascending-start, ascending-neighbor backtracking yields the
  // lexicographically smallest Hamiltonian path — deterministic, so
  // synthesized gadgets (and artifact bytes) are reproducible.
  for (std::size_t start : support.ones()) {
    auto path = walk_order_from(support, start, nullptr);
    if (!path.empty()) {
      return path;
    }
  }
  throw std::invalid_argument(
      "coupling map '" + name_ +
      "': support admits no ancilla walk (no Hamiltonian path in the "
      "induced subgraph)");
}

bool CouplingMap::has_walk(const BitVec& support) const {
  if (support.popcount() <= 1) {
    return true;
  }
  if (!is_connected_subset(support)) {
    return false;  // Cheap necessary condition first.
  }
  for (std::size_t start : support.ones()) {
    if (!walk_order_from(support, start, nullptr).empty()) {
      return true;
    }
  }
  return false;
}

std::string CouplingMap::fingerprint() const {
  // FNV-1a over the site count and the sorted edge list; the name is
  // deliberately excluded so equal structures hash equally. The legacy
  // seed and le64 fold order are baked into artifact-store keys —
  // frozen.
  util::Fnv1a64 h(util::kFnv1a64LegacyOffset);
  h.le64(num_sites());
  for (const auto& [a, b] : edges()) {
    h.le64(a);
    h.le64(b);
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "k%zu-%016llx", num_sites(),
                static_cast<unsigned long long>(h.value()));
  return buffer;
}

CouplingMap CouplingMap::closure(std::size_t reach) const {
  const std::size_t n = num_sites();
  CouplingMap result(name_, n);
  for (std::size_t a = 0; a < n; ++a) {
    // Bounded BFS from a; every site reached within `reach` hops (all of
    // the component when reach == 0) becomes a neighbor.
    BitVec visited(n);
    visited.set(a);
    BitVec frontier = visited;
    for (std::size_t depth = 0; (reach == 0 || depth < reach) &&
                                frontier.any();
         ++depth) {
      BitVec next(n);
      for (std::size_t q : frontier.ones()) {
        next |= adjacency_[q];
      }
      for (std::size_t q : visited.ones()) {
        next.set(q, false);
      }
      visited |= next;
      frontier = next;
    }
    for (std::size_t b : visited.ones()) {
      if (a < b) {
        result.add_edge(a, b);
      }
    }
  }
  return result;
}

std::shared_ptr<const CouplingMap> CouplingSpec::resolve(
    std::size_t n) const {
  if (custom != nullptr) {
    if (custom->num_sites() != n) {
      throw std::invalid_argument(
          "coupling map '" + custom->name() + "' has " +
          std::to_string(custom->num_sites()) + " sites but the code has " +
          std::to_string(n) + " qubits");
    }
    return custom->is_all_to_all() ? nullptr : custom;
  }
  if (name == "all") {
    return nullptr;
  }
  auto map = std::make_shared<CouplingMap>(CouplingMap::builtin(name, n));
  return map->is_all_to_all() ? nullptr : map;
}

std::shared_ptr<const CouplingMap> CouplingSpec::resolve_gadget(
    std::size_t n) const {
  const auto map = resolve(n);
  if (map == nullptr) {
    return nullptr;
  }
  auto gadget =
      std::make_shared<CouplingMap>(map->closure(gadget_reach));
  return gadget->is_all_to_all() ? nullptr : gadget;
}

std::string CouplingSpec::key_fragment(std::size_t n) const {
  const auto map = resolve(n);
  if (map == nullptr) {
    return {};
  }
  std::string fragment = "|coup=" + map->fingerprint();
  if (gadget_reach != 0) {
    fragment += "+g" + std::to_string(gadget_reach);
  }
  return fragment;
}

}  // namespace ftsp::qec
