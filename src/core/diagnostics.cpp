#include "core/diagnostics.hpp"

#include <random>
#include <vector>

#include "f2/gauss.hpp"

namespace ftsp::core {

TwoFaultSurvey survey_two_faults(const Executor& executor, std::size_t t,
                                 std::size_t samples, std::uint64_t seed) {
  const Protocol& protocol = executor.protocol();
  const qec::StateContext& state = *protocol.state;
  std::mt19937_64 rng(seed);

  // Flatten the always-executed fault locations for uniform pair
  // sampling.
  struct Location {
    const circuit::Circuit* segment;
    std::size_t gate_index;
    std::size_t num_ops;
  };
  std::vector<Location> locations;
  std::vector<const circuit::Circuit*> segments = {&protocol.prep};
  for (const auto* layer : {&protocol.layer1, &protocol.layer2}) {
    if (layer->has_value()) {
      segments.push_back(&(*layer)->verif);
    }
  }
  for (const auto* segment : segments) {
    const auto sites = sim::enumerate_fault_sites(*segment);
    for (const auto& site : sites) {
      locations.push_back({segment, site.gate_index, site.ops.size()});
    }
  }

  TwoFaultSurvey survey;
  if (locations.size() < 2) {
    return survey;
  }
  std::uniform_int_distribution<std::size_t> pick(0, locations.size() - 1);
  for (std::size_t s = 0; s < samples; ++s) {
    std::size_t a = pick(rng);
    std::size_t b = pick(rng);
    while (b == a) {
      b = pick(rng);
    }
    const std::size_t op_a = rng() % locations[a].num_ops;
    const std::size_t op_b = rng() % locations[b].num_ops;

    const auto chooser = [&](const SiteRef& ref) -> int {
      for (const std::size_t which : {a, b}) {
        const Location& loc = locations[which];
        if (ref.segment == loc.segment &&
            ref.gate_index == loc.gate_index) {
          return static_cast<int>(which == a ? op_a : op_b);
        }
      }
      return -1;
    };
    const auto result = executor.run(chooser);
    ++survey.pairs_checked;
    const std::size_t wx =
        state.reduced_weight(qec::PauliType::X, result.data_error.x);
    const std::size_t wz =
        state.reduced_weight(qec::PauliType::Z, result.data_error.z);
    if (wx > t || wz > t) {
      ++survey.weight_violations;
    }
    // Logical-class residual: the X part is (a representative of) a
    // logical class iff it anticommutes with some logical Z; mirrored for
    // the Z part after reduction.
    bool logical = false;
    for (std::size_t l = 0; l < protocol.code->num_logical(); ++l) {
      logical = logical ||
                result.data_error.x.dot(protocol.code->logical_z().row(l)) ||
                result.data_error.z.dot(protocol.code->logical_x().row(l));
    }
    if (logical) {
      ++survey.logical_class_residuals;
    }
  }
  return survey;
}

LeadingOrder exact_leading_order(const Executor& executor,
                                 const decoder::PerfectDecoder& decoder) {
  const Protocol& protocol = executor.protocol();

  // Flatten (location, op) events with their conditional probability
  // weight 1/|ops| given the location faulted.
  struct Event {
    const circuit::Circuit* segment;
    std::size_t gate_index;
    int op;
    double weight;
  };
  std::vector<Event> events;
  std::vector<const circuit::Circuit*> segments = {&protocol.prep};
  for (const auto* layer : {&protocol.layer1, &protocol.layer2}) {
    if (layer->has_value()) {
      segments.push_back(&(*layer)->verif);
    }
  }
  // Remember location boundaries so pairs use *distinct locations*.
  std::vector<std::pair<std::size_t, std::size_t>> location_ranges;
  for (const auto* segment : segments) {
    const auto sites = sim::enumerate_fault_sites(*segment);
    for (const auto& site : sites) {
      const std::size_t begin = events.size();
      for (std::size_t o = 0; o < site.ops.size(); ++o) {
        events.push_back({segment, site.gate_index, static_cast<int>(o),
                          1.0 / static_cast<double>(site.ops.size())});
      }
      location_ranges.emplace_back(begin, events.size());
    }
  }

  LeadingOrder result;

  // Single faults: exact FT sanity (all must pass).
  for (const auto& e : events) {
    bool injected = false;
    const auto run = executor.run([&](const SiteRef& ref) -> int {
      if (!injected && ref.segment == e.segment &&
          ref.gate_index == e.gate_index) {
        injected = true;
        return e.op;
      }
      return -1;
    });
    if (decoder.decode(run.data_error).x_flip) {
      ++result.single_fault_failures;
    }
  }

  // All unordered pairs of events at distinct locations.
  for (std::size_t la = 0; la < location_ranges.size(); ++la) {
    for (std::size_t lb = la + 1; lb < location_ranges.size(); ++lb) {
      for (std::size_t ia = location_ranges[la].first;
           ia < location_ranges[la].second; ++ia) {
        for (std::size_t ib = location_ranges[lb].first;
             ib < location_ranges[lb].second; ++ib) {
          const Event& a = events[ia];
          const Event& b = events[ib];
          bool a_done = false;
          bool b_done = false;
          const auto run = executor.run([&](const SiteRef& ref) -> int {
            if (!a_done && ref.segment == a.segment &&
                ref.gate_index == a.gate_index) {
              a_done = true;
              return a.op;
            }
            if (!b_done && ref.segment == b.segment &&
                ref.gate_index == b.gate_index) {
              b_done = true;
              return b.op;
            }
            return -1;
          });
          ++result.pairs_enumerated;
          const auto logical = decoder.decode(run.data_error);
          if (logical.x_flip) {
            result.c2_x += a.weight * b.weight;
          }
          if (logical.x_flip || logical.z_flip) {
            result.c2_any += a.weight * b.weight;
          }
        }
      }
    }
  }
  return result;
}

}  // namespace ftsp::core
