#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "sim/pauli_frame.hpp"

namespace ftsp::sim {

/// One possible fault operator at a circuit location, stored sparsely
/// (a fault touches at most the two qubits of the faulty operation).
struct FaultOp {
  struct Term {
    std::size_t qubit = 0;
    bool x = false;
    bool z = false;
  };
  std::array<Term, 2> terms{};
  int num_terms = 0;
  bool flip_outcome = false;  ///< Measurement faults flip the classical bit.
};

/// A fault location: the set of possible fault operators occurring right
/// after gate `gate_index` of a circuit. Under the E1_1 depolarizing model
/// every location fails independently with probability p, drawing
/// uniformly from `ops`:
///   CNOT      -> 15 two-qubit Paulis,
///   H         -> 3 single-qubit Paulis,
///   PrepZ (X) -> 1 op: preparation flipped (X resp. Z error),
///   MeasZ/X   -> 1 op: outcome flipped.
struct FaultSite {
  std::size_t gate_index = 0;
  std::vector<FaultOp> ops;
};

/// All fault locations of a circuit, in gate order.
std::vector<FaultSite> enumerate_fault_sites(const circuit::Circuit& c);

/// Injects `op` into the frame. For measurement faults the gate's
/// classical bit is flipped, so the owning gate must be passed in.
void apply_fault(PauliFrame& frame, const FaultOp& op,
                 const circuit::Gate& gate);

/// The E1_1 circuit-level depolarizing noise model of the paper's
/// simulations: one physical error rate `p` shared by all location types.
struct NoiseModel {
  double p = 0.0;
};

/// Coarse classification of fault locations for biased noise models.
enum class LocationKind : std::size_t {
  OneQubit = 0,     ///< H (single-qubit unitaries).
  TwoQubit = 1,     ///< CNOT.
  Measurement = 2,  ///< MeasZ / MeasX outcome flips.
  Init = 3,         ///< PrepZ / PrepX.
};

constexpr std::size_t kNumLocationKinds = 4;

LocationKind location_kind(circuit::GateKind kind);

/// Per-kind fault probabilities. `e1_1(p)` reproduces the paper's uniform
/// model; other settings express measurement- or gate-biased hardware.
struct NoiseParams {
  std::array<double, kNumLocationKinds> rates{};

  static NoiseParams e1_1(double p) {
    NoiseParams params;
    params.rates = {p, p, p, p};
    return params;
  }
  static NoiseParams biased(double p1, double p2, double p_meas,
                            double p_init) {
    NoiseParams params;
    params.rates = {p1, p2, p_meas, p_init};
    return params;
  }

  double rate(LocationKind kind) const {
    return rates[static_cast<std::size_t>(kind)];
  }
  double rate_for(circuit::GateKind kind) const {
    return rate(location_kind(kind));
  }
};

}  // namespace ftsp::sim
