// Command-line front end: synthesize, check, simulate, export.
//
//   ftsp_cli synth   <code> [--basis zero|plus] [--defer-flags]
//                    [--save FILE]
//   ftsp_cli check   <code|@FILE>
//   ftsp_cli report  <code|@FILE>
//   ftsp_cli qasm    <code|@FILE>
//   ftsp_cli sim     <code|@FILE> [--p RATE] [--shots N]
//   ftsp_cli table   <code>           (Table-I style metrics row)
//   ftsp_cli codes                     (list the built-in library)
//
// <code> is a library name (e.g. Steane) or a path to a CSS code file in
// the code_io format; @FILE loads a previously saved protocol.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/executor.hpp"
#include "core/ft_check.hpp"
#include "core/metrics.hpp"
#include "core/protocol.hpp"
#include "core/qasm_export.hpp"
#include "core/report.hpp"
#include "core/samplers.hpp"
#include "core/serialize.hpp"
#include "qec/code_io.hpp"
#include "qec/code_library.hpp"

namespace {

using namespace ftsp;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

qec::CssCode resolve_code(const std::string& spec) {
  try {
    return qec::library_code_by_name(spec);
  } catch (const std::invalid_argument&) {
    return qec::parse_css_code(read_file(spec));
  }
}

core::Protocol resolve_protocol(const std::string& spec,
                                const core::SynthesisOptions& options) {
  if (!spec.empty() && spec[0] == '@') {
    return core::load_protocol(read_file(spec.substr(1)));
  }
  return core::synthesize_protocol(resolve_code(spec),
                                   qec::LogicalBasis::Zero, options);
}

int usage() {
  std::fprintf(stderr,
               "usage: ftsp_cli synth|check|report|qasm|sim|table <code> "
               "[options], or ftsp_cli codes\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string command = argv[1];
  try {
    if (command == "codes") {
      for (const auto& code : qec::all_library_codes()) {
        std::printf("%s\n", code.description().c_str());
      }
      return 0;
    }
    if (argc < 3) {
      return usage();
    }
    const std::string spec = argv[2];

    core::SynthesisOptions options;
    std::string save_path;
    double p = 0.01;
    std::size_t shots = 20000;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--defer-flags") == 0) {
        options.flag_policy = core::FlagPolicy::DeferToNextLayer;
      } else if (std::strcmp(argv[i], "--basis") == 0 && i + 1 < argc) {
        ++i;  // zero|plus; applied below via resolve only for synth.
      } else if (std::strcmp(argv[i], "--save") == 0 && i + 1 < argc) {
        save_path = argv[++i];
      } else if (std::strcmp(argv[i], "--p") == 0 && i + 1 < argc) {
        p = std::stod(argv[++i]);
      } else if (std::strcmp(argv[i], "--shots") == 0 && i + 1 < argc) {
        shots = static_cast<std::size_t>(std::stoul(argv[++i]));
      }
    }

    if (command == "synth") {
      qec::LogicalBasis basis = qec::LogicalBasis::Zero;
      for (int i = 3; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--basis") == 0 &&
            std::string(argv[i + 1]) == "plus") {
          basis = qec::LogicalBasis::Plus;
        }
      }
      const auto protocol =
          core::synthesize_protocol(resolve_code(spec), basis, options);
      const auto ft = core::check_fault_tolerance(protocol);
      std::printf("%s\n",
                  core::format_metrics_row(
                      spec, core::compute_metrics(protocol))
                      .c_str());
      std::printf("fault tolerance: %s (%zu faults)\n",
                  ft.ok ? "OK" : "VIOLATED", ft.faults_checked);
      if (!save_path.empty()) {
        std::ofstream out(save_path);
        out << core::save_protocol(protocol);
        std::printf("saved to %s\n", save_path.c_str());
      }
      return ft.ok ? 0 : 1;
    }

    const auto protocol = resolve_protocol(spec, options);
    if (command == "check") {
      const auto ft = core::check_fault_tolerance(protocol);
      std::printf("%s: %zu faults checked, %s\n", spec.c_str(),
                  ft.faults_checked, ft.ok ? "OK" : "VIOLATED");
      for (const auto& violation : ft.violations) {
        std::printf("  %s\n", violation.c_str());
      }
      return ft.ok ? 0 : 1;
    }
    if (command == "report") {
      std::printf("%s", core::describe_protocol(protocol).c_str());
      return 0;
    }
    if (command == "qasm") {
      std::printf("%s", core::protocol_to_qasm(protocol).c_str());
      return 0;
    }
    if (command == "table") {
      std::printf("%s\n%s\n", core::metrics_row_header().c_str(),
                  core::format_metrics_row(
                      spec, core::compute_metrics(protocol))
                      .c_str());
      return 0;
    }
    if (command == "sim") {
      const core::Executor executor(protocol);
      const decoder::PerfectDecoder decoder(*protocol.code);
      const auto batch =
          core::sample_protocol_batch(executor, decoder, p, shots, 1);
      const auto estimate = core::estimate_logical_rate({batch}, p);
      std::printf("%s @ p=%g: pL = %.4e +- %.1e (%zu shots)\n",
                  spec.c_str(), p, estimate.mean, estimate.std_error,
                  shots);
      return 0;
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
