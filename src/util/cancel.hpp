#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace ftsp::util {

/// Thrown by long-running compute loops when their CancelToken fires.
/// The serving tier maps it to the `deadline_exceeded` wire error.
struct CancelledError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Cooperative cancellation: a flag plus an optional absolute deadline.
/// Compute loops poll `cancelled()` (or call `throw_if_cancelled()`) at
/// natural chunk boundaries; nobody is interrupted mid-wave, so results
/// already produced stay deterministic and a cancelled request simply
/// stops scheduling more work.
///
/// The deadline is *latched* into the flag on first observation, so the
/// raw `flag()` pointer — suitable for `sat::Solver::set_interrupt_flag`
/// which only ever loads an atomic bool — also goes true once any
/// `cancelled()` call has seen the deadline pass.
///
/// Thread-safe: `cancel()` and `cancelled()` may race freely.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  explicit CancelToken(Clock::time_point deadline) : deadline_(deadline) {}

  /// Trips the token permanently.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once cancelled, or once the deadline (if any) has passed.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return true;
    }
    if (deadline_ != Clock::time_point{} && Clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Throws CancelledError (with `what` as the message) when cancelled.
  void throw_if_cancelled(const char* what) const {
    if (cancelled()) {
      throw CancelledError(what);
    }
  }

  /// The raw flag, for interrupt-flag consumers (sat::Solver). Only
  /// reflects a passed deadline after some `cancelled()` call latched
  /// it — pair with periodic `cancelled()` polls on the driving loop.
  const std::atomic<bool>* flag() const { return &cancelled_; }

  Clock::time_point deadline() const { return deadline_; }

 private:
  mutable std::atomic<bool> cancelled_{false};
  Clock::time_point deadline_{};
};

}  // namespace ftsp::util
