#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ftsp::sim {

/// Portable 256-bit batch word: four `uint64_t` sub-words advanced in
/// lock-step. The frame-batch kernels are straight XOR/AND/OR loops, so
/// a plain fixed-size array auto-vectorizes to full vector registers on
/// every target the compiler knows (AVX2, NEON, SVE) without any
/// intrinsics — and degrades to four scalar ops where it doesn't.
///
/// Lane layout is the natural little-endian extension of the u64 word:
/// lane `l` lives in sub-word `l / 64`, bit `l % 64`. Sub-word order is
/// load-bearing: the Bernoulli fault masks are drawn one u64 sub-word at
/// a time in ascending order, which is what makes the 256-bit sampler
/// path consume the exact same RNG stream as the u64 path (bit-for-bit
/// identical batches, tested).
struct SimdWord {
  static constexpr std::size_t kU64Count = 4;
  std::uint64_t v[kU64Count];

  SimdWord& operator^=(const SimdWord& o) {
    for (std::size_t i = 0; i < kU64Count; ++i) {
      v[i] ^= o.v[i];
    }
    return *this;
  }
  SimdWord& operator&=(const SimdWord& o) {
    for (std::size_t i = 0; i < kU64Count; ++i) {
      v[i] &= o.v[i];
    }
    return *this;
  }
  SimdWord& operator|=(const SimdWord& o) {
    for (std::size_t i = 0; i < kU64Count; ++i) {
      v[i] |= o.v[i];
    }
    return *this;
  }
  friend SimdWord operator^(SimdWord a, const SimdWord& b) { return a ^= b; }
  friend SimdWord operator&(SimdWord a, const SimdWord& b) { return a &= b; }
  friend SimdWord operator|(SimdWord a, const SimdWord& b) { return a |= b; }
  friend SimdWord operator~(SimdWord a) {
    for (std::size_t i = 0; i < kU64Count; ++i) {
      a.v[i] = ~a.v[i];
    }
    return a;
  }
  friend bool operator==(const SimdWord&, const SimdWord&) = default;

  bool any() const {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < kU64Count; ++i) {
      acc |= v[i];
    }
    return acc != 0;
  }
};

/// Compile-time dispatch surface of the batch kernels: everything the
/// frame batch and the batched samplers need to know about a word type.
/// Bit-level (per-lane) access goes through the u64 sub-word view so the
/// sparse paths — fault injection, outcome grouping, per-shot decode —
/// share one implementation across widths.
template <typename Word>
struct WordOps;

template <>
struct WordOps<std::uint64_t> {
  static constexpr std::size_t kU64PerWord = 1;
  static constexpr std::size_t kBits = 64;
  static constexpr std::uint64_t zero() { return 0; }
  static constexpr std::uint64_t ones() { return ~std::uint64_t{0}; }
  static bool any(std::uint64_t w) { return w != 0; }
  static std::uint64_t& sub(std::uint64_t& w, std::size_t) { return w; }
  static const std::uint64_t& sub(const std::uint64_t& w, std::size_t) {
    return w;
  }
};

template <>
struct WordOps<SimdWord> {
  static constexpr std::size_t kU64PerWord = SimdWord::kU64Count;
  static constexpr std::size_t kBits = 64 * kU64PerWord;
  static constexpr SimdWord zero() { return SimdWord{}; }
  static constexpr SimdWord ones() {
    SimdWord w{};
    for (std::size_t i = 0; i < kU64PerWord; ++i) {
      w.v[i] = ~std::uint64_t{0};
    }
    return w;
  }
  static bool any(const SimdWord& w) { return w.any(); }
  static std::uint64_t& sub(SimdWord& w, std::size_t i) { return w.v[i]; }
  static const std::uint64_t& sub(const SimdWord& w, std::size_t i) {
    return w.v[i];
  }
};

/// u64 sub-word `i` of a row of `Word`s (i counts u64s, not Words).
template <typename Word>
inline std::uint64_t& subword(Word* row, std::size_t i) {
  return WordOps<Word>::sub(row[i / WordOps<Word>::kU64PerWord],
                            i % WordOps<Word>::kU64PerWord);
}
template <typename Word>
inline const std::uint64_t& subword(const Word* row, std::size_t i) {
  return WordOps<Word>::sub(row[i / WordOps<Word>::kU64PerWord],
                            i % WordOps<Word>::kU64PerWord);
}

template <typename Word>
inline bool get_lane(const Word* row, std::size_t lane) {
  return (subword(row, lane / 64) >> (lane % 64)) & 1;
}
template <typename Word>
inline void flip_lane(Word* row, std::size_t lane) {
  subword(row, lane / 64) ^= std::uint64_t{1} << (lane % 64);
}
template <typename Word>
inline void set_lane(Word* row, std::size_t lane) {
  subword(row, lane / 64) |= std::uint64_t{1} << (lane % 64);
}

}  // namespace ftsp::sim
