#pragma once
namespace demo {
int value();
}
