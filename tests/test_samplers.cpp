#include "core/samplers.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/protocol.hpp"
#include "qec/code_library.hpp"

namespace ftsp::core {
namespace {

using qec::LogicalBasis;

class SamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    protocol_ = synthesize_protocol(qec::steane(), LogicalBasis::Zero);
    executor_ = std::make_unique<Executor>(protocol_);
    decoder_ =
        std::make_unique<decoder::PerfectDecoder>(*protocol_.code);
  }
  Protocol protocol_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<decoder::PerfectDecoder> decoder_;
};

TEST_F(SamplerTest, BatchHasRequestedShots) {
  const auto batch =
      sample_protocol_batch(*executor_, *decoder_, 0.1, 500, 42);
  EXPECT_EQ(batch.trajectories.size(), 500u);
  EXPECT_DOUBLE_EQ(batch.q.rates[0], 0.1);
}

TEST_F(SamplerTest, InvalidQRejected) {
  EXPECT_THROW(sample_protocol_batch(*executor_, *decoder_, 0.0, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(sample_protocol_batch(*executor_, *decoder_, 1.0, 10, 1),
               std::invalid_argument);
}

TEST_F(SamplerTest, FaultCountsBounded) {
  const auto batch =
      sample_protocol_batch(*executor_, *decoder_, 0.3, 200, 7);
  for (const auto& t : batch.trajectories) {
    std::uint32_t sites = 0;
    for (std::size_t k = 0; k < sim::kNumLocationKinds; ++k) {
      EXPECT_LE(t.faults[k], t.sites[k]);
      sites += t.sites[k];
    }
    EXPECT_GT(sites, 0u);
  }
}

TEST_F(SamplerTest, PlainMonteCarloMatchesManualAverage) {
  // With a single batch at q == p, weights are exactly 1 and the MIS
  // estimate equals the raw failure fraction.
  const auto batch =
      sample_protocol_batch(*executor_, *decoder_, 0.08, 3000, 9);
  std::size_t failures = 0;
  for (const auto& t : batch.trajectories) {
    failures += t.x_fail ? 1 : 0;
  }
  const auto estimate = estimate_logical_rate({batch}, 0.08, true);
  EXPECT_NEAR(estimate.mean,
              static_cast<double>(failures) / 3000.0, 1e-12);
}

TEST_F(SamplerTest, EstimateDecreasesWithP) {
  const std::vector<TrajectoryBatch> batches = {
      sample_protocol_batch(*executor_, *decoder_, 0.1, 6000, 21),
      sample_protocol_batch(*executor_, *decoder_, 0.02, 6000, 22)};
  const auto high = estimate_logical_rate(batches, 0.08);
  const auto mid = estimate_logical_rate(batches, 0.02);
  const auto low = estimate_logical_rate(batches, 0.005);
  EXPECT_GT(high.mean, mid.mean);
  EXPECT_GT(mid.mean, low.mean);
  EXPECT_GT(low.mean, 0.0);
}

TEST_F(SamplerTest, ScalingIsQuadraticIsh) {
  // Deterministic FT protocol: p_L = O(p^2), so p_L(p) / p^2 should be
  // roughly constant over a decade.
  const std::vector<TrajectoryBatch> batches = {
      sample_protocol_batch(*executor_, *decoder_, 0.05, 20000, 31),
      sample_protocol_batch(*executor_, *decoder_, 0.01, 20000, 32)};
  const double r1 = estimate_logical_rate(batches, 0.03).mean / (0.03 * 0.03);
  const double r2 =
      estimate_logical_rate(batches, 0.006).mean / (0.006 * 0.006);
  EXPECT_GT(r2, 0.0);
  const double ratio = r1 / r2;
  EXPECT_GT(ratio, 0.2);
  EXPECT_LT(ratio, 5.0);
}

TEST_F(SamplerTest, MisAgreesWithPlainMcWithinError) {
  const auto mc = sample_protocol_batch(*executor_, *decoder_, 0.05, 20000,
                                        51);
  const auto is = sample_protocol_batch(*executor_, *decoder_, 0.15, 20000,
                                        52);
  const auto direct = estimate_logical_rate({mc}, 0.05);
  const auto reweighted = estimate_logical_rate({is}, 0.05);
  const double sigma = 4.0 * std::sqrt(direct.std_error * direct.std_error +
                                       reweighted.std_error *
                                           reweighted.std_error);
  EXPECT_NEAR(direct.mean, reweighted.mean, sigma + 1e-9);
}

TEST_F(SamplerTest, StdErrorShrinksWithShots) {
  const auto small =
      sample_protocol_batch(*executor_, *decoder_, 0.1, 500, 61);
  const auto large =
      sample_protocol_batch(*executor_, *decoder_, 0.1, 20000, 62);
  const auto e_small = estimate_logical_rate({small}, 0.1);
  const auto e_large = estimate_logical_rate({large}, 0.1);
  EXPECT_LT(e_large.std_error, e_small.std_error);
}

TEST_F(SamplerTest, EmptyBatchesGiveZero) {
  const auto estimate = estimate_logical_rate({}, 0.01);
  EXPECT_EQ(estimate.mean, 0.0);
  EXPECT_EQ(estimate.std_error, 0.0);
}

namespace {

bool same_trajectory(const Trajectory& a, const Trajectory& b) {
  return a.sites == b.sites && a.faults == b.faults &&
         a.x_fail == b.x_fail && a.z_fail == b.z_fail &&
         a.hook_terminated == b.hook_terminated;
}

}  // namespace

TEST_F(SamplerTest, BatchedDeterministicAcrossThreadCounts) {
  // Shards are seeded by (seed, shard index) alone, so the batch must be
  // bit-identical no matter how many workers ran it.
  SamplerOptions one_thread;
  one_thread.num_threads = 1;
  one_thread.shard_shots = 256;  // Several shards even at modest shots.
  SamplerOptions four_threads = one_thread;
  four_threads.num_threads = 4;

  const auto a = sample_protocol_batch(*executor_, *decoder_, 0.1, 1000, 77,
                                       one_thread);
  const auto b = sample_protocol_batch(*executor_, *decoder_, 0.1, 1000, 77,
                                       four_threads);
  ASSERT_EQ(a.trajectories.size(), b.trajectories.size());
  for (std::size_t i = 0; i < a.trajectories.size(); ++i) {
    ASSERT_TRUE(same_trajectory(a.trajectories[i], b.trajectories[i]))
        << "shot " << i;
  }
  // And rerunning with the same seed reproduces the same counts.
  const auto c = sample_protocol_batch(*executor_, *decoder_, 0.1, 1000, 77,
                                       four_threads);
  for (std::size_t i = 0; i < a.trajectories.size(); ++i) {
    ASSERT_TRUE(same_trajectory(a.trajectories[i], c.trajectories[i]));
  }
}

TEST_F(SamplerTest, WideWordPathBitIdenticalToU64Path) {
  // The 256-bit SimdWord engine must produce the exact same batch as
  // the u64 oracle path for equal (seed, shard_shots): fault masks are
  // drawn one u64 sub-word at a time in ascending lane order at every
  // width. This is the runtime check CI leans on for the compile-time
  // word dispatch.
  SamplerOptions narrow;
  narrow.width = WordWidth::W64;
  narrow.num_threads = 1;
  narrow.shard_shots = 300;  // Forces partial words at both widths.
  SamplerOptions wide = narrow;
  wide.width = WordWidth::W256;
  for (const std::size_t shots : {1ul, 130ul, 1000ul}) {
    const auto a =
        sample_protocol_batch(*executor_, *decoder_, 0.07, shots, 5, narrow);
    const auto b =
        sample_protocol_batch(*executor_, *decoder_, 0.07, shots, 5, wide);
    ASSERT_EQ(a.trajectories.size(), b.trajectories.size());
    for (std::size_t i = 0; i < a.trajectories.size(); ++i) {
      ASSERT_TRUE(same_trajectory(a.trajectories[i], b.trajectories[i]))
          << "shots " << shots << " shot " << i;
    }
  }
  // The default (Auto) path is one of the two checked widths.
  SamplerOptions auto_width = narrow;
  auto_width.width = WordWidth::Auto;
  const auto c =
      sample_protocol_batch(*executor_, *decoder_, 0.07, 1000, 5, auto_width);
  const auto a =
      sample_protocol_batch(*executor_, *decoder_, 0.07, 1000, 5, narrow);
  for (std::size_t i = 0; i < a.trajectories.size(); ++i) {
    ASSERT_TRUE(same_trajectory(a.trajectories[i], c.trajectories[i]));
  }
}

TEST_F(SamplerTest, BatchedMatchesScalarOracleStatistics) {
  // The batched engine and the scalar reference sample the same
  // distribution; their logical-rate estimates must agree within error,
  // and their per-kind site profiles must be drawn from the same
  // protocol segments.
  const double q = 0.08;
  const std::size_t shots = 6000;
  const auto scalar =
      sample_protocol_batch_scalar(*executor_, *decoder_, q, shots, 123);
  const auto batched =
      sample_protocol_batch(*executor_, *decoder_, q, shots, 456);

  const auto scalar_est = estimate_logical_rate({scalar}, q);
  const auto batched_est = estimate_logical_rate({batched}, q);
  const double sigma =
      5.0 * std::sqrt(scalar_est.std_error * scalar_est.std_error +
                      batched_est.std_error * batched_est.std_error);
  EXPECT_NEAR(scalar_est.mean, batched_est.mean, sigma + 1e-9);

  // Mean fault fraction per kind must match the shared rate q.
  for (std::size_t k = 0; k < sim::kNumLocationKinds; ++k) {
    double scalar_sites = 0.0, scalar_faults = 0.0;
    double batched_sites = 0.0, batched_faults = 0.0;
    for (const auto& t : scalar.trajectories) {
      scalar_sites += t.sites[k];
      scalar_faults += t.faults[k];
    }
    for (const auto& t : batched.trajectories) {
      batched_sites += t.sites[k];
      batched_faults += t.faults[k];
    }
    if (scalar_sites == 0.0) {
      // Kind absent from this protocol: both engines must agree.
      EXPECT_EQ(batched_sites, 0.0) << "kind " << k;
      continue;
    }
    ASSERT_GT(batched_sites, 0.0);
    const double n = std::min(scalar_sites, batched_sites);
    const double tolerance = 6.0 * std::sqrt(q * (1 - q) / n) + 1e-12;
    EXPECT_NEAR(scalar_faults / scalar_sites, q, tolerance) << "kind " << k;
    EXPECT_NEAR(batched_faults / batched_sites, q, tolerance) << "kind " << k;
  }
}

TEST_F(SamplerTest, BatchedHandlesOddShotCountsAndShardSizes) {
  SamplerOptions options;
  options.num_threads = 2;
  options.shard_shots = 100;  // Not a multiple of 64: partial tail words.
  const auto batch = sample_protocol_batch(*executor_, *decoder_, 0.2, 333,
                                           9, options);
  ASSERT_EQ(batch.trajectories.size(), 333u);
  for (const auto& t : batch.trajectories) {
    std::uint64_t sites = 0;
    for (std::size_t k = 0; k < sim::kNumLocationKinds; ++k) {
      EXPECT_LE(t.faults[k], t.sites[k]);
      sites += t.sites[k];
    }
    EXPECT_GT(sites, 0u);
  }
}

TEST_F(SamplerTest, ZeroShardShotsRejected) {
  SamplerOptions options;
  options.shard_shots = 0;
  EXPECT_THROW(
      sample_protocol_batch(*executor_, *decoder_, 0.1, 10, 1, options),
      std::invalid_argument);
}

TEST(TrajectoryCounters, HoldCountsBeyondUint16) {
  // Regression for the uint16_t counters that silently wrapped at 65535:
  // large codes exceed 65k fault locations per sweep.
  static_assert(
      std::is_same_v<decltype(Trajectory{}.sites),
                     std::array<std::uint32_t, sim::kNumLocationKinds>>,
      "Trajectory site counters must be at least 32-bit");
  Trajectory t;
  for (int i = 0; i < 70000; ++i) {
    ++t.sites[0];
    ++t.faults[0];
  }
  EXPECT_EQ(t.sites[0], 70000u);
  EXPECT_EQ(t.total_faults(), 70000u);

  // The importance-sampling density must see the un-wrapped counts.
  t.faults[0] = 0;
  TrajectoryBatch batch;
  batch.q = sim::NoiseParams::e1_1(0.01);
  Trajectory failing = t;
  failing.x_fail = true;
  batch.trajectories = {failing};
  const auto estimate = estimate_logical_rate({batch}, 0.01);
  EXPECT_GT(estimate.mean, 0.0);
}

}  // namespace
}  // namespace ftsp::core
